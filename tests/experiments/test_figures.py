"""Shape tests for the figure-reproduction experiments (tiny sizes).

These validate that each experiment runs end to end and that the paper's
headline orderings emerge even on very small populations.  The benchmark
harness replays them at larger scale.
"""

import pytest

from repro.experiments import (
    FIG4_METRICS,
    Fig3Setup,
    Fig4Setup,
    GREEDY_BOUND,
    ScalabilitySetup,
    check_podium_row,
    fig3a,
    fig3c,
    fig4,
    linear_fit_r2,
    measure_ratio,
    mean_ratio,
    podium_row_markdown,
    scalability_in_profile_size,
    scalability_in_users,
    timing_table,
)

TINY = Fig3Setup(
    ta_users=150,
    yelp_users=250,
    ta_destinations=6,
    yelp_destinations=8,
    top_k=100,
)


@pytest.fixture(scope="module")
def fig3a_table():
    return fig3a(TINY)


@pytest.fixture(scope="module")
def fig3c_table():
    return fig3c(TINY)


class TestFig3Intrinsic:
    def test_fig3a_podium_leads_total_score(self, fig3a_table):
        assert fig3a_table.leader("total_score") == "Podium"

    def test_fig3a_all_selectors_present(self, fig3a_table):
        assert set(fig3a_table.rows) == {
            "Podium",
            "Random",
            "Clustering",
            "Distance",
        }

    def test_fig3c_podium_leads_every_metric(self, fig3c_table):
        for metric in fig3c_table.metrics:
            assert fig3c_table.leader(metric) == "Podium", metric

    def test_fig3c_distance_worst_at_intersections(self, fig3c_table):
        values = {
            name: row["intersected_coverage"]
            for name, row in fig3c_table.rows.items()
        }
        assert values["Distance"] == min(values.values())

    def test_yelp_gap_larger_than_tripadvisor(self, fig3a_table, fig3c_table):
        """§8.4: the Podium-vs-best-baseline gap widens on Yelp."""

        def gap(table):
            podium = table.rows["Podium"]["total_score"]
            best_other = max(
                row["total_score"]
                for name, row in table.rows.items()
                if name != "Podium"
            )
            return podium / best_other

        assert gap(fig3c_table) > gap(fig3a_table)


class TestFig4Customization:
    @pytest.fixture(scope="class")
    def fig4_table(self):
        return fig4(Fig4Setup(n_users=250, repetitions=3))

    def test_rows_and_metrics(self, fig4_table):
        assert "no-customization" in fig4_table.rows
        assert set(fig4_table.metrics) == set(FIG4_METRICS)
        assert len(fig4_table.rows) == 5

    def test_feedback_coverage_decreases_with_priority_size(self, fig4_table):
        coverages = [
            fig4_table.rows[f"priority-{size}"]["feedback_group_coverage"]
            for size in (20, 40, 60, 80)
        ]
        assert coverages[0] > coverages[-1]

    def test_baseline_row_has_full_feedback_coverage(self, fig4_table):
        assert (
            fig4_table.rows["no-customization"]["feedback_group_coverage"]
            == 1.0
        )


class TestScalability:
    @pytest.fixture(scope="class")
    def setup(self):
        return ScalabilitySetup(
            user_sizes=(100, 200, 400),
            profile_sizes=(5, 10, 20),
            fixed_users=200,
            repetitions=1,
        )

    def test_users_sweep_rows(self, setup):
        rows = scalability_in_users(setup)
        assert {r.algorithm for r in rows} == {
            "Podium",
            "Clustering",
            "Distance",
        }
        assert {r.x for r in rows} == {100, 200, 400}
        assert all(r.seconds >= 0 for r in rows)

    def test_profile_sweep_rows(self, setup):
        rows = scalability_in_profile_size(setup)
        assert {r.x for r in rows} == {5, 10, 20}

    def test_timing_table_renders(self, setup):
        rows = scalability_in_users(setup)
        text = timing_table(rows)
        assert "| x |" in text
        assert "| 100 |" in text

    def test_linear_fit_helper(self):
        from repro.experiments import TimingRow

        rows = [TimingRow("A", x, 2.0 * x) for x in (1, 2, 3, 4)]
        assert linear_fit_r2(rows, "A") == pytest.approx(1.0)


class TestOptimalRatio:
    def test_ratio_exceeds_bound(self):
        result = measure_ratio(n_users=30, budget=4)
        assert result.ratio >= GREEDY_BOUND
        assert result.optimal_score >= result.greedy_score

    def test_near_optimal_in_practice(self):
        """§8.4 reports .998; demand >= 0.95 on average here."""
        assert mean_ratio(trials=3, n_users=30, budget=4) >= 0.95


class TestTable1:
    def test_all_desiderata_hold(self):
        checks = check_podium_row()
        assert len(checks) == 6
        assert all(c.holds for c in checks), [
            c.name for c in checks if not c.holds
        ]

    def test_markdown_rendering(self):
        text = podium_row_markdown(check_podium_row())
        assert "| desideratum |" in text
        assert "customizable" in text
