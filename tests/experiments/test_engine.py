"""Parallel experiment engine: determinism, seeding, spec rebuilds.

The engine's contract is that the *schedule never shows*: jobs=1 and
jobs=N produce byte-identical tables and per-repetition selections,
because every cell's randomness is derived from its identity via
``SeedSequence(entropy, spawn_key=(index,))`` and results are assembled
positionally.
"""

import numpy as np
import pytest

from repro.core.errors import PodiumError
from repro.experiments.engine import (
    ExperimentCell,
    InstanceSpec,
    cell_rng,
    make_selector,
    materialize_cached,
    run_cells,
    run_intrinsic_experiment,
)

SPEC = InstanceSpec(
    kind="profiles",
    n_users=120,
    dataset_seed=5,
    budget=5,
    min_support=2,
    n_properties=30,
    mean_profile_size=8.0,
)


class TestInstanceSpec:
    def test_materialize_builds_instance(self):
        built = SPEC.materialize()
        assert len(built.repository) == 120
        assert built.instance.budget == 5

    def test_materialize_is_deterministic(self):
        a, b = SPEC.materialize(), SPEC.materialize()
        assert a.repository.user_ids == b.repository.user_ids
        assert list(a.instance.groups.keys) == list(b.instance.groups.keys)

    def test_cache_returns_same_object(self):
        assert materialize_cached(SPEC) is materialize_cached(SPEC)

    def test_invalid_kind_rejected(self):
        with pytest.raises(PodiumError):
            InstanceSpec(kind="magic")
        with pytest.raises(PodiumError):
            InstanceSpec(kind="reviews", preset="imdb")
        with pytest.raises(PodiumError):
            InstanceSpec(kind="profiles", weight_scheme="Quadratic")


class TestSeeding:
    def test_spawn_key_matches_seedsequence_spawn(self):
        # The worker-side reconstruction must equal SeedSequence.spawn's
        # children — the documented seeding scheme.
        root = np.random.SeedSequence(42)
        children = root.spawn(5)
        for index in range(5):
            direct = np.random.default_rng(
                np.random.SeedSequence(entropy=42, spawn_key=(index,))
            )
            via_spawn = np.random.default_rng(children[index])
            assert direct.integers(1 << 30, size=8).tolist() == \
                via_spawn.integers(1 << 30, size=8).tolist()

    def test_cell_rng_modes(self):
        cell = ExperimentCell("timing", SPEC, ("random",), seed=(1, 2))
        raw = ExperimentCell(
            "timing", SPEC, ("random",), seed=(1, 2), seed_mode="raw"
        )
        assert cell_rng(cell) is not None
        assert (
            cell_rng(raw).integers(1 << 30)
            == np.random.default_rng((1, 2)).integers(1 << 30)
        )
        assert cell_rng(ExperimentCell("timing", SPEC, ())) is None
        with pytest.raises(PodiumError):
            cell_rng(
                ExperimentCell(
                    "timing", SPEC, (), seed=(1,), seed_mode="hash"
                )
            )

    def test_unknown_runner_and_selector_rejected(self):
        from repro.experiments.engine import run_cell

        with pytest.raises(PodiumError):
            run_cell(ExperimentCell("warp", SPEC, ()))
        with pytest.raises(PodiumError):
            make_selector("quantum")


class TestDeterminismAcrossJobs:
    def test_tables_and_selections_identical(self):
        results = [
            run_intrinsic_experiment(
                "engine determinism",
                SPEC,
                ("podium", "random", "distance"),
                repetitions=3,
                top_k=50,
                seed=9,
                jobs=jobs,
            )
            for jobs in (1, 2)
        ]
        serial, parallel = results
        assert serial.table.rows == parallel.table.rows
        assert serial.selections == parallel.selections
        # Per-repetition selections exist for the stochastic selector.
        assert len(serial.selections["random"]) == 3
        assert len(serial.selections["podium"]) == 1

    def test_repetitions_draw_distinct_streams(self):
        result = run_intrinsic_experiment(
            "distinct streams",
            SPEC,
            ("random",),
            repetitions=4,
            top_k=50,
            seed=9,
            jobs=1,
        )
        reps = result.selections["random"]
        assert len({tuple(r) for r in reps}) > 1

    def test_cells_run_in_order(self):
        cells = [
            ExperimentCell("timing", SPEC, ("random",), seed=(0, i))
            for i in range(4)
        ]
        assert len(run_cells(cells, jobs=2)) == 4
