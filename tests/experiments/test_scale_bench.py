"""Scale benchmark: out-of-core rows, RSS accounting, and failure gates."""

import pytest

from repro.experiments.scale import (
    ScaleSetup,
    _peak_rss_tree_mb,
    benchmark_scale_path,
    scale_report_failures,
)


@pytest.fixture(scope="module")
def ooc_report(tmp_path_factory):
    setup = ScaleSetup(
        user_sizes=(800,),
        budget=10,
        shards=2,
        jobs=1,
        out_of_core=True,
        run_entries=600,
        workdir=str(tmp_path_factory.mktemp("ooc-bench")),
    )
    return benchmark_scale_path(setup)


class TestOutOfCoreRow:
    def test_row_shape(self, ooc_report):
        (row,) = ooc_report["rows"]
        assert row["mode"] == "out_of_core"
        assert row["users"] == 800
        assert row["runs"] >= 1
        assert row["store_bytes"] > 0
        assert row["index_bytes"] > 0
        assert set(row["select_seconds"]) == {
            "matrix", "sharded", "stochastic",
        }

    def test_parity_checks_ran_and_passed(self, ooc_report):
        (row,) = ooc_report["rows"]
        # 800 <= dict_cap, so the in-RAM twin was built and compared.
        assert row["index_crc_match"] is True
        assert row["selections_match"] is True

    def test_quality_within_floor(self, ooc_report):
        (row,) = ooc_report["rows"]
        assert row["quality_ratio"]["sharded"] >= 0.95
        assert row["quality_ratio"]["stochastic"] >= 0.95

    def test_rss_fields_aggregate_children(self, ooc_report):
        (row,) = ooc_report["rows"]
        assert row["peak_rss_mb"] == pytest.approx(
            max(row["peak_rss_self_mb"], row["peak_rss_children_mb"])
        )
        assert row["peak_rss_mb"] > 0

    def test_payload_records_setup(self, ooc_report):
        assert ooc_report["out_of_core"] is True
        assert ooc_report["run_entries"] == 600

    def test_no_failures(self, ooc_report):
        assert scale_report_failures(ooc_report) == []


class TestFailureGates:
    def test_rss_cap_breach_fails(self, ooc_report):
        capped = dict(ooc_report, rss_cap_mb=0.5)
        failures = scale_report_failures(capped)
        assert any("cap" in f for f in failures)

    def test_generous_rss_cap_passes(self, ooc_report):
        capped = dict(ooc_report, rss_cap_mb=1 << 20)
        assert scale_report_failures(capped) == []

    def test_crc_mismatch_fails(self, ooc_report):
        broken = dict(ooc_report)
        broken["rows"] = [dict(ooc_report["rows"][0], index_crc_match=False)]
        failures = scale_report_failures(broken)
        assert any("checksum" in f or "crc" in f.lower() for f in failures)

    def test_quality_floor_breach_fails(self, ooc_report):
        row = dict(ooc_report["rows"][0])
        row["quality_ratio"] = dict(row["quality_ratio"], sharded=0.5)
        failures = scale_report_failures(dict(ooc_report, rows=[row]))
        assert any("quality" in f for f in failures)


class TestRssTree:
    def test_helper_reports_positive_and_consistent(self):
        rss = _peak_rss_tree_mb()
        assert rss["self"] > 0
        assert rss["max"] == max(rss["self"], rss["children"])
