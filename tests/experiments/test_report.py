"""Unit tests for the EXPERIMENTS.md report generator."""

import pytest

from repro.experiments import ComparisonTable
from repro.experiments.report import _PAPER_SHAPES, _section, main


class TestSectionRendering:
    def test_section_contains_raw_normalized_and_shape(self):
        table = ComparisonTable("demo", ("m",))
        table.add_row("Podium", {"m": 2.0})
        table.add_row("Random", {"m": 1.0})
        text = _section(table, "fig3a")
        assert "### demo" in text
        assert "### demo (normalized)" in text
        assert "**Paper shape:**" in text
        assert _PAPER_SHAPES["fig3a"] in text

    def test_every_figure_has_a_shape_entry(self):
        assert set(_PAPER_SHAPES) == {
            "fig3a",
            "fig3b",
            "fig3c",
            "fig3d",
            "fig4",
            "fig5",
            "fig6",
            "optimal",
        }

    def test_shapes_do_not_double_prefix(self):
        for text in _PAPER_SHAPES.values():
            assert not text.startswith("Paper:")


class TestFullReport:
    """Runs the real fast-mode pipeline once end to end (~1 minute)."""

    def test_main_writes_structured_report(self, tmp_path):
        out = tmp_path / "EXPERIMENTS.md"
        assert main(["--fast", "--out", str(out)]) == 0
        report = out.read_text()
        for heading in (
            "# EXPERIMENTS — paper vs. measured",
            "## Table 1",
            "## Fig. 3a",
            "## Fig. 3b",
            "## Fig. 3c",
            "## Fig. 3d",
            "## Fig. 4",
            "## Fig. 5",
            "## Fig. 6",
            "## §8.4 — greedy vs optimal",
        ):
            assert heading in report, heading
        assert report.count("**Paper shape:**") == 8
        assert "(fast mode)" in report
