"""Constrained-selection experiment: rows, gates, determinism.

Small-population runs of the price-of-fairness suite: every scenario
produces a satisfied row whose constrained score is a sane fraction of
the unconstrained one, the acceptance gate flags doctored reports, and
the engine contract holds — jobs=1 and jobs=N emit identical rows.
"""

import pytest

from repro.experiments.constraints import (
    ConstraintsSetup,
    benchmark_constraints,
    constraints_report_failures,
    constraints_table,
    fair_bound_spec,
    run_constraints_experiment,
)
from repro.experiments.engine import materialize_cached

SETUP = ConstraintsSetup(
    users=250,
    n_properties=30,
    budget=8,
    seed=1,
    floors=2,
    ceilings=1,
    cluster_ks=(2, 3),
)


@pytest.fixture(scope="module")
def rows():
    return run_constraints_experiment(SETUP)


def _stable(rows):
    """Rows minus wall-clock noise."""
    return [
        {k: v for k, v in row.items() if not k.endswith("seconds")}
        for row in rows
    ]


class TestRows:
    def test_one_row_per_scenario(self, rows):
        assert len(rows) == 1 + len(SETUP.cluster_methods) * len(
            SETUP.cluster_ks
        )
        assert rows[0]["mode"] == "fair"
        assert all(r["mode"] == "clustered" for r in rows[1:])

    def test_every_scenario_satisfied(self, rows):
        assert all(r["satisfied"] for r in rows)
        assert rows[0]["floor_satisfaction_rate"] == 1.0
        assert all(
            r["floor_satisfaction_rate"] is None for r in rows[1:]
        )

    def test_price_of_fairness_is_a_ratio(self, rows):
        for row in rows:
            assert 0.0 < row["price_of_fairness"] <= 1.0
            assert row["constrained_score"] <= row["exact_score"]
            assert row["selected_size"] == SETUP.budget

    def test_rows_identical_across_jobs(self, rows):
        parallel = run_constraints_experiment(SETUP, jobs=3)
        assert _stable(parallel) == _stable(rows)

    def test_table_renders_every_row(self, rows):
        table = constraints_table(rows)
        for row in rows:
            assert row["scenario"] in table


class TestBenchGate:
    def test_green_report_has_no_failures(self, rows):
        report = benchmark_constraints(SETUP)
        assert _stable(report["rows"]) == _stable(rows)
        assert constraints_report_failures(report) == []

    def test_gate_flags_quality_and_violations(self, rows):
        report = benchmark_constraints(SETUP)
        doctored = dict(report, rows=[dict(r) for r in report["rows"]])
        doctored["rows"][0]["price_of_fairness"] = 0.2
        doctored["rows"][0]["floor_satisfaction_rate"] = 0.5
        doctored["rows"][1]["satisfied"] = False
        failures = constraints_report_failures(doctored)
        assert len(failures) == 3
        assert any("price of fairness" in f for f in failures)
        assert any("floor satisfaction" in f for f in failures)
        assert any("not satisfied" in f for f in failures)


class TestFairBoundSpec:
    def test_bounds_target_distinct_properties(self):
        from repro.core.index import instance_index
        from repro.experiments.engine import InstanceSpec

        spec = InstanceSpec(
            kind="profiles",
            n_users=SETUP.users,
            n_properties=SETUP.n_properties,
            mean_profile_size=SETUP.mean_profile_size,
            dataset_seed=SETUP.seed,
            budget=SETUP.budget,
        )
        index = instance_index(materialize_cached(spec).instance)
        constraint = fair_bound_spec(index, 3, 2, 2, 1)
        properties = [
            key.property_label
            for key, _ in constraint.floors + constraint.ceilings
        ]
        assert len(properties) == len(set(properties)) == 5
        assert all(count == 2 for _, count in constraint.floors)
        assert all(count == 1 for _, count in constraint.ceilings)
