"""Unit tests for the experiment harness utilities."""

import pytest

from repro.baselines import PodiumSelector, RandomSelector
from repro.core import GroupingConfig
from repro.experiments import (
    ComparisonTable,
    IntrinsicExperimentConfig,
    run_intrinsic_comparison,
)


@pytest.fixture()
def table():
    t = ComparisonTable("demo", ("a", "b"))
    t.add_row("X", {"a": 2.0, "b": 1.0})
    t.add_row("Y", {"a": 4.0, "b": 0.5})
    return t


class TestComparisonTable:
    def test_leader(self, table):
        assert table.leader("a") == "Y"
        assert table.leader("b") == "X"

    def test_normalized_peaks_at_one(self, table):
        normalized = table.normalized()
        assert normalized.rows["Y"]["a"] == 1.0
        assert normalized.rows["X"]["a"] == 0.5
        assert normalized.rows["X"]["b"] == 1.0

    def test_normalized_handles_zero_column(self):
        t = ComparisonTable("zeros", ("m",))
        t.add_row("X", {"m": 0.0})
        assert t.normalized().rows["X"]["m"] == 0.0

    def test_normalized_negative_peak_preserves_ordering(self):
        # An all-negative column must pass through unscaled: dividing by
        # the (negative) peak would flip which algorithm looks best.
        t = ComparisonTable("negatives", ("m",))
        t.add_row("best", {"m": -1.0})
        t.add_row("worst", {"m": -5.0})
        normalized = t.normalized()
        assert normalized.rows["best"]["m"] == -1.0
        assert normalized.rows["worst"]["m"] == -5.0
        assert normalized.leader("m") == t.leader("m")

    def test_normalized_mixed_sign_uses_positive_peak(self):
        t = ComparisonTable("mixed", ("m",))
        t.add_row("up", {"m": 2.0})
        t.add_row("down", {"m": -4.0})
        normalized = t.normalized()
        assert normalized.rows["up"]["m"] == 1.0
        assert normalized.rows["down"]["m"] == -2.0

    def test_normalized_nan_peak_passes_through(self):
        t = ComparisonTable("nan", ("m",))
        t.add_row("X", {"m": float("nan")})
        t.add_row("Y", {"m": 3.0})
        assert t.normalized().rows["Y"]["m"] == 3.0

    def test_markdown_rendering(self, table):
        text = table.to_markdown()
        assert "### demo" in text
        assert "| X | 2.000 | 1.000 |" in text
        assert text.count("|---") == 3

    def test_add_row_filters_to_metrics(self):
        t = ComparisonTable("demo", ("a",))
        t.add_row("X", {"a": 1.0, "extra": 9.0})
        assert t.rows["X"] == {"a": 1.0}


class TestRunIntrinsicComparison:
    def test_rows_and_metrics(self, small_profile_repo):
        config = IntrinsicExperimentConfig(
            budget=4, grouping=GroupingConfig(), repetitions=2, top_k=20
        )
        table = run_intrinsic_comparison(
            "t",
            small_profile_repo,
            [PodiumSelector(), RandomSelector()],
            config,
            seed=1,
        )
        assert set(table.rows) == {"Podium", "Random"}
        for row in table.rows.values():
            assert set(row) == set(table.metrics)

    def test_podium_leads_total_score(self, small_profile_repo):
        config = IntrinsicExperimentConfig(
            budget=4, repetitions=3, top_k=20
        )
        table = run_intrinsic_comparison(
            "t",
            small_profile_repo,
            [PodiumSelector(), RandomSelector()],
            config,
            seed=2,
        )
        assert table.leader("total_score") == "Podium"

    def test_deterministic_given_seed(self, small_profile_repo):
        config = IntrinsicExperimentConfig(budget=3, repetitions=2, top_k=10)
        t1 = run_intrinsic_comparison(
            "t", small_profile_repo, [RandomSelector()], config, seed=9
        )
        t2 = run_intrinsic_comparison(
            "t", small_profile_repo, [RandomSelector()], config, seed=9
        )
        assert t1.rows == t2.rows
