"""Meta-tests on the public API surface: docstrings, exports, imports.

These enforce the documentation deliverable mechanically: every public
module, class and function reachable from the package roots carries a
docstring, and every ``__all__`` name actually resolves.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

SUBPACKAGES = [
    "repro",
    "repro.core",
    "repro.taxonomy",
    "repro.datasets",
    "repro.baselines",
    "repro.metrics",
    "repro.procurement",
    "repro.service",
    "repro.experiments",
]


def _walk_modules():
    names = set(SUBPACKAGES)
    for package_name in SUBPACKAGES:
        package = importlib.import_module(package_name)
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                if info.name.startswith("_"):
                    continue  # __main__ executes the CLI on import
                names.add(f"{package_name}.{info.name}")
    return sorted(names)


@pytest.mark.parametrize("module_name", _walk_modules())
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("package_name", SUBPACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", [])
    for name in exported:
        assert hasattr(package, name), f"{package_name}.{name}"


def _public_members():
    members = []
    for module_name in _walk_modules():
        module = importlib.import_module(module_name)
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module_name:
                continue  # re-export; documented at its home
            members.append((f"{module_name}.{name}", obj))
    return members


@pytest.mark.parametrize(
    "qualified,obj",
    _public_members(),
    ids=[q for q, _ in _public_members()],
)
def test_public_member_has_docstring(qualified, obj):
    assert obj.__doc__ and obj.__doc__.strip(), qualified


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_public_methods_have_docstrings():
    """Public methods of the core API classes are documented."""
    from repro.core import (
        CoverageState,
        GroupSet,
        UserProfile,
        UserRepository,
    )
    from repro.service import PodiumService

    for cls in (UserProfile, UserRepository, GroupSet, CoverageState, PodiumService):
        for name, member in vars(cls).items():
            if name.startswith("_") or not callable(member):
                continue
            assert member.__doc__, f"{cls.__name__}.{name}"
