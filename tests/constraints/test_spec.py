"""ConstraintSpec model: validation, JSON boundary, cache identity."""

import pytest

from repro.core import GroupKey
from repro.core.errors import InvalidConstraintError
from repro.constraints import CLUSTER_METHODS, ClusterSpec, ConstraintSpec

AGE_Y = GroupKey("age", "young")
AGE_O = GroupKey("age", "old")
GEN_F = GroupKey("gender", "f")


class TestSpecValidation:
    def test_empty_spec(self):
        spec = ConstraintSpec.build()
        assert spec.is_empty
        assert spec.mode == "fair"

    def test_negative_floor_rejected(self):
        with pytest.raises(InvalidConstraintError, match="must be >= 0"):
            ConstraintSpec.build(floors={AGE_Y: -1})

    def test_duplicate_floor_rejected(self):
        with pytest.raises(InvalidConstraintError, match="duplicate floor"):
            ConstraintSpec(floors=((AGE_Y, 1), (AGE_Y, 2)))

    def test_ceiling_below_floor_rejected(self):
        with pytest.raises(InvalidConstraintError, match="below its floor"):
            ConstraintSpec.build(floors={AGE_Y: 2}, ceilings={AGE_Y: 1})

    def test_ceiling_equal_floor_allowed(self):
        spec = ConstraintSpec.build(floors={AGE_Y: 2}, ceilings={AGE_Y: 2})
        assert spec.floor_map[AGE_Y] == 2
        assert spec.ceiling_map[AGE_Y] == 2

    def test_clusters_exclusive_with_bounds(self):
        with pytest.raises(InvalidConstraintError, match="cluster mode"):
            ConstraintSpec.build(
                floors={AGE_Y: 1}, clusters=ClusterSpec()
            )

    def test_unknown_cluster_method(self):
        with pytest.raises(InvalidConstraintError, match="unknown cluster"):
            ClusterSpec(method="dbscan")

    def test_bad_cluster_count(self):
        with pytest.raises(InvalidConstraintError, match="k must be >= 1"):
            ClusterSpec(k=0)

    def test_cluster_methods_registry(self):
        assert set(CLUSTER_METHODS) == {"stratified", "kmeans"}


class TestSpecIdentity:
    """Construction order must not matter: specs are cache keys."""

    def test_build_canonicalizes_order(self):
        a = ConstraintSpec.build(floors={AGE_Y: 1, GEN_F: 2, AGE_O: 1})
        b = ConstraintSpec.build(floors={GEN_F: 2, AGE_O: 1, AGE_Y: 1})
        assert a == b
        assert hash(a) == hash(b)

    def test_distinct_specs_differ(self):
        a = ConstraintSpec.build(floors={AGE_Y: 1})
        b = ConstraintSpec.build(floors={AGE_Y: 2})
        c = ConstraintSpec.build(ceilings={AGE_Y: 1})
        assert len({a, b, c}) == 3

    def test_cluster_identity(self):
        a = ConstraintSpec.build(clusters=ClusterSpec("kmeans", 3, 7))
        b = ConstraintSpec.build(clusters=ClusterSpec("kmeans", 3, 7))
        assert a == b and hash(a) == hash(b)
        assert a.mode == "clustered"


class TestJsonBoundary:
    def test_roundtrip_fair(self):
        spec = ConstraintSpec.build(
            floors={AGE_Y: 2, GEN_F: 1}, ceilings={AGE_O: 0}
        )
        again = ConstraintSpec.from_dict(spec.to_dict())
        assert again == spec

    def test_roundtrip_clustered(self):
        spec = ConstraintSpec.build(
            clusters=ClusterSpec(method="kmeans", k=5, seed=3)
        )
        again = ConstraintSpec.from_dict(spec.to_dict())
        assert again == spec

    def test_from_dict_shape(self):
        spec = ConstraintSpec.from_dict(
            {"floors": [["age", "young", 2]], "ceilings": [["age", "old", 1]]}
        )
        assert spec.floor_map == {AGE_Y: 2}
        assert spec.ceiling_map == {AGE_O: 1}

    def test_unknown_field_rejected(self):
        with pytest.raises(InvalidConstraintError, match="unknown constraints"):
            ConstraintSpec.from_dict({"floor": [["age", "young", 1]]})

    def test_malformed_triple_rejected(self):
        for bad in (
            [["age", "young"]],
            [["age", "young", "2"]],
            [["age", "young", True]],
            ["age"],
            "age",
        ):
            with pytest.raises(InvalidConstraintError):
                ConstraintSpec.from_dict({"floors": bad})

    def test_duplicate_json_entry_rejected(self):
        with pytest.raises(InvalidConstraintError, match="duplicate"):
            ConstraintSpec.from_dict(
                {"floors": [["age", "young", 1], ["age", "young", 2]]}
            )

    def test_malformed_clusters_rejected(self):
        with pytest.raises(InvalidConstraintError, match="clusters"):
            ConstraintSpec.from_dict({"clusters": "kmeans"})
        with pytest.raises(InvalidConstraintError, match="unknown clusters"):
            ConstraintSpec.from_dict({"clusters": {"method": "kmeans", "n": 3}})
        with pytest.raises(InvalidConstraintError, match="malformed clusters"):
            ConstraintSpec.from_dict({"clusters": {"k": "many"}})

    def test_not_a_mapping_rejected(self):
        with pytest.raises(InvalidConstraintError, match="JSON object"):
            ConstraintSpec.from_dict([["age", "young", 1]])
