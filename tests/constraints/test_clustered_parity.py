"""Clustered-solver parity: CSR-native == pure-Python oracle, exactly.

The oracle receives the *same partition* decoded to user ids — the
partition itself (stratified buckets or k-means labels) is deterministic
given the spec, so native and oracle must agree on every seat count,
every per-cluster pick, the repair round and the exact combined score.
"""

import pytest

from repro.core import subset_score
from repro.core.weights import (
    IdenWeights,
    LBSWeights,
    PropCoverage,
    SingleCoverage,
)
from repro.constraints import (
    ClusterSpec,
    ConstraintSpec,
    clustered_select_oracle,
    constrained_select,
    partition_rows,
)

from .conftest import sweep_case

WEIGHTS = (IdenWeights, LBSWeights)
COVERAGES = (SingleCoverage, PropCoverage)
SEEDS = (0, 1)
BUDGET = 6


def _oracle_partition(index, cluster_spec):
    return [
        (label, [str(index.users[r]) for r in rows])
        for label, rows in partition_rows(index, cluster_spec)
    ]


class TestClusteredParitySweep:
    @pytest.mark.parametrize("weight_cls", WEIGHTS)
    @pytest.mark.parametrize("coverage_cls", COVERAGES)
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("method", ("stratified", "kmeans"))
    def test_native_matches_oracle(
        self, weight_cls, coverage_cls, seed, method
    ):
        _repo, instance, index = sweep_case(weight_cls, coverage_cls, seed)
        cluster_spec = ClusterSpec(method=method, k=3, seed=0)
        spec = ConstraintSpec.build(clusters=cluster_spec)
        native = constrained_select(index, spec, BUDGET)
        selected, gains, score = clustered_select_oracle(
            instance, _oracle_partition(index, cluster_spec), BUDGET
        )
        assert native.selected == tuple(selected)
        assert native.result.gains == tuple(gains)
        assert native.result.score == score
        assert subset_score(instance, list(native.selected)) == score

    def test_cluster_report_covers_selection(self):
        _repo, _instance, index = sweep_case(LBSWeights, SingleCoverage, 0)
        spec = ConstraintSpec.build(
            clusters=ClusterSpec(method="stratified", k=4, seed=0)
        )
        result = constrained_select(index, spec, BUDGET)
        assert result.clusters is not None
        from_clusters = {
            u for report in result.clusters for u in report.selected
        }
        assert from_clusters | set(result.repair) == set(result.selected)
        assert sum(r.seats for r in result.clusters) <= BUDGET
        sizes = {r.label: r.size for r in result.clusters}
        assert all(size > 0 for size in sizes.values())

    def test_seats_follow_largest_remainder(self):
        _repo, _instance, index = sweep_case(IdenWeights, SingleCoverage, 0)
        from repro.baselines.stratified import proportional_apportionment

        cluster_spec = ClusterSpec(method="stratified", k=4, seed=0)
        partition = partition_rows(index, cluster_spec)
        expected = proportional_apportionment(
            [len(rows) for _label, rows in partition], BUDGET
        )
        spec = ConstraintSpec.build(clusters=cluster_spec)
        result = constrained_select(index, spec, BUDGET)
        reported = {r.label: r.seats for r in result.clusters}
        for (label, _rows), seats in zip(partition, expected):
            assert reported[label] == seats

    def test_deterministic_across_runs(self):
        _repo, _instance, index = sweep_case(LBSWeights, PropCoverage, 1)
        spec = ConstraintSpec.build(
            clusters=ClusterSpec(method="kmeans", k=3, seed=5)
        )
        first = constrained_select(index, spec, BUDGET)
        second = constrained_select(index, spec, BUDGET)
        assert first.selected == second.selected
        assert first.result.score == second.result.score
