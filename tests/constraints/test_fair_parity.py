"""Fair-solver parity sweep: CSR-native == pure-Python oracle, exactly.

Mirrors ``tests/core/test_backend_parity.py``: every weight × coverage
× seed combination must produce byte-identical selections, gains and
scores between :func:`fair_select_rows` (via :func:`constrained_select`)
and :func:`fair_select_oracle` — on the in-RAM index AND on a
memory-mapped ``.npz`` checkpoint of the same index.
"""

import numpy as np
import pytest

from repro.core import open_index_npz, select_from_index, subset_score
from repro.core.persistence import save_index_npz
from repro.core.weights import (
    IdenWeights,
    LBSWeights,
    PropCoverage,
    SingleCoverage,
)
from repro.constraints import constrained_select, fair_select_oracle

from .conftest import fair_spec_for, sweep_case

WEIGHTS = (IdenWeights, LBSWeights)
COVERAGES = (SingleCoverage, PropCoverage)
SEEDS = (0, 1)
BUDGET = 6


class TestFairParitySweep:
    @pytest.mark.parametrize("weight_cls", WEIGHTS)
    @pytest.mark.parametrize("coverage_cls", COVERAGES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_native_matches_oracle(self, weight_cls, coverage_cls, seed):
        _repo, instance, index = sweep_case(weight_cls, coverage_cls, seed)
        spec = fair_spec_for(index)
        native = constrained_select(index, spec, BUDGET)
        selected, gains, score = fair_select_oracle(instance, spec, BUDGET)
        assert native.selected == tuple(selected)
        assert native.result.gains == tuple(gains)
        assert native.result.score == score
        assert native.satisfied
        # The reported score is the exact unconstrained subset score.
        assert subset_score(instance, list(native.selected)) == score

    @pytest.mark.parametrize("weight_cls", WEIGHTS)
    @pytest.mark.parametrize("coverage_cls", COVERAGES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_mapped_checkpoint_matches_in_ram(
        self, weight_cls, coverage_cls, seed, tmp_path
    ):
        _repo, _instance, index = sweep_case(weight_cls, coverage_cls, seed)
        spec = fair_spec_for(index)
        in_ram = constrained_select(index, spec, BUDGET)
        path = tmp_path / "index.npz"
        save_index_npz(index, path)
        mapped = open_index_npz(path)
        via_mapped = constrained_select(mapped, spec, BUDGET)
        assert via_mapped.selected == in_ram.selected
        assert via_mapped.result.score == in_ram.result.score
        assert via_mapped.result.gains == in_ram.result.gains

    @pytest.mark.parametrize("seed", SEEDS)
    def test_candidate_pool_respected(self, seed):
        repo, instance, index = sweep_case(LBSWeights, SingleCoverage, seed)
        pool = sorted(repo.user_ids)[:40]
        spec = fair_spec_for(index)
        native = constrained_select(index, spec, BUDGET, candidates=pool)
        selected, _gains, score = fair_select_oracle(
            instance, spec, BUDGET, candidates=pool
        )
        assert native.selected == tuple(selected)
        assert native.result.score == score
        assert set(native.selected) <= set(pool)


class TestFairBackends:
    def test_stochastic_full_ratio_is_exact(self):
        _repo, _instance, index = sweep_case(IdenWeights, SingleCoverage, 0)
        spec = fair_spec_for(index)
        exact = constrained_select(index, spec, BUDGET)
        sampled = constrained_select(
            index, spec, BUDGET, method="stochastic", sample_ratio=1.0
        )
        assert sampled.selected == exact.selected
        assert sampled.result.score == exact.result.score

    def test_stochastic_subsampled_stays_feasible(self):
        _repo, instance, index = sweep_case(LBSWeights, SingleCoverage, 1)
        spec = fair_spec_for(index)
        result = constrained_select(
            index,
            spec,
            BUDGET,
            method="stochastic",
            rng=np.random.default_rng(7),
            sample_ratio=0.5,
        )
        assert len(result.selected) == BUDGET
        assert result.satisfied
        assert (
            subset_score(instance, list(result.selected))
            == result.result.score
        )

    @pytest.mark.parametrize("shards", (1, 3))
    def test_sharded_fair_satisfies_floors(self, shards):
        _repo, instance, index = sweep_case(LBSWeights, PropCoverage, 0)
        spec = fair_spec_for(index)
        result = constrained_select(
            index, spec, BUDGET, method="sharded", shards=shards
        )
        assert len(result.selected) == BUDGET
        assert result.satisfied
        assert (
            subset_score(instance, list(result.selected))
            == result.result.score
        )

    def test_select_from_index_routes_constraints(self):
        _repo, _instance, index = sweep_case(IdenWeights, SingleCoverage, 0)
        spec = fair_spec_for(index)
        direct = constrained_select(index, spec, BUDGET)
        routed = select_from_index(index, BUDGET, constraints=spec)
        assert routed.selected == direct.selected
        assert routed.score == direct.result.score

    def test_unknown_method_rejected(self):
        from repro.core import PodiumError

        _repo, _instance, index = sweep_case(IdenWeights, SingleCoverage, 0)
        spec = fair_spec_for(index)
        with pytest.raises(PodiumError, match="unknown constrained"):
            constrained_select(index, spec, BUDGET, method="lazy")
