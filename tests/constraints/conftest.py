"""Shared helpers for the constrained-selection test suite."""

from __future__ import annotations

import numpy as np

from repro.core import (
    GroupingConfig,
    build_instance,
    build_simple_groups,
    instance_index,
)
from repro.constraints import ConstraintSpec
from repro.datasets.synth import generate_profile_repository


def sweep_case(weight_cls, coverage_cls, seed, n_users=60, budget=6):
    """One (repo, instance, index) triple in the backend-parity style."""
    repo = generate_profile_repository(
        n_users=n_users, n_properties=30, mean_profile_size=10.0, seed=seed
    )
    groups = build_simple_groups(repo, GroupingConfig())
    instance = build_instance(
        repo,
        budget=budget,
        groups=groups,
        weight_scheme=weight_cls(),
        coverage_scheme=coverage_cls(),
    )
    return repo, instance, instance_index(instance)


def fair_spec_for(index):
    """A deterministic, satisfiable floors+ceilings spec for ``index``.

    Floors of 2 on the two largest groups (they always have >= 2
    members), a ceiling of 1 on the next-largest group and a ceiling of
    0 on the one after — enough structure to bend the greedy away from
    the unconstrained pick order without ever being infeasible at the
    sweep budgets.
    """
    counts = np.diff(index.g_indptr)
    order = sorted(
        range(index.n_groups),
        key=lambda g: (-int(counts[g]), str(index.group_keys[g])),
    )
    floors = {index.group_keys[order[0]]: 2, index.group_keys[order[1]]: 2}
    ceilings = {
        index.group_keys[order[2]]: 1,
        index.group_keys[order[3]]: 0,
    }
    return ConstraintSpec.build(floors=floors, ceilings=ceilings)
