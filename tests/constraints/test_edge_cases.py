"""Constraint edge cases: infeasibility diagnosis, ceiling exhaustion,
degenerate clustering, and composition with customization."""

import numpy as np
import pytest

from repro.core import (
    CustomizationFeedback,
    GroupKey,
    InvalidBudgetError,
    PodiumError,
    greedy_select,
    subset_score,
)
from repro.core.customization import customized_index, customized_instance
from repro.core.errors import (
    InfeasibleConstraintError,
    InfeasibleSelectionError,
    InvalidConstraintError,
)
from repro.core.weights import IdenWeights, LBSWeights, SingleCoverage
from repro.constraints import (
    ClusterSpec,
    ConstraintSpec,
    constrained_select,
    fair_select_oracle,
)

from .conftest import sweep_case

BUDGET = 6


def _group_by_size(index, position):
    """Group key at ``position`` in the descending-size order."""
    counts = np.diff(index.g_indptr)
    order = sorted(
        range(index.n_groups),
        key=lambda g: (-int(counts[g]), str(index.group_keys[g])),
    )
    return index.group_keys[order[position]], int(counts[order[position]])


class TestInfeasibleFloors:
    def test_floor_sum_exceeds_budget_names_property(self):
        _repo, _instance, index = sweep_case(IdenWeights, SingleCoverage, 0)
        counts = np.diff(index.g_indptr)
        # Two buckets of the same property, floors summing past budget.
        by_property = {}
        for g, key in enumerate(index.group_keys):
            by_property.setdefault(key.property_label, []).append(g)
        label, gids = next(
            (label, gids)
            for label, gids in sorted(by_property.items())
            if len(gids) >= 2
            and all(counts[g] >= 4 for g in gids[:2])
        )
        spec = ConstraintSpec.build(
            floors={
                index.group_keys[gids[0]]: 4,
                index.group_keys[gids[1]]: 4,
            }
        )
        with pytest.raises(InfeasibleConstraintError, match=label):
            constrained_select(index, spec, BUDGET)

    def test_floor_above_group_size_names_group(self):
        _repo, _instance, index = sweep_case(IdenWeights, SingleCoverage, 0)
        key, size = _group_by_size(index, index.n_groups - 1)
        spec = ConstraintSpec.build(floors={key: size + 1})
        with pytest.raises(InfeasibleConstraintError, match=str(key)):
            constrained_select(index, spec, BUDGET)

    def test_floor_on_group_outside_pool_names_group(self):
        repo, _instance, index = sweep_case(IdenWeights, SingleCoverage, 0)
        key, _size = _group_by_size(index, 0)
        gid = index.group_pos[key]
        members = {
            str(index.users[int(r)]) for r in index.members_of_rows(np.asarray([gid], dtype=np.int64))
        }
        pool = sorted(set(repo.user_ids) - members)
        assert pool, "candidate pool must not be empty"
        spec = ConstraintSpec.build(floors={key: 1})
        with pytest.raises(InfeasibleConstraintError, match=str(key)):
            constrained_select(index, spec, BUDGET, candidates=pool)

    def test_oracle_raises_identically(self):
        _repo, instance, index = sweep_case(IdenWeights, SingleCoverage, 0)
        key, size = _group_by_size(index, index.n_groups - 1)
        spec = ConstraintSpec.build(floors={key: size + 1})
        with pytest.raises(InfeasibleConstraintError, match=str(key)):
            fair_select_oracle(instance, spec, BUDGET)

    def test_unknown_group_rejected(self):
        _repo, _instance, index = sweep_case(IdenWeights, SingleCoverage, 0)
        spec = ConstraintSpec.build(
            floors={GroupKey("no-such-property", "bucket"): 1}
        )
        with pytest.raises(InvalidConstraintError, match="unknown groups"):
            constrained_select(index, spec, BUDGET)

    def test_infeasible_is_an_infeasible_selection_error(self):
        """Callers catching the existing exhaustion error keep working."""
        assert issubclass(
            InfeasibleConstraintError, InfeasibleSelectionError
        )

    def test_bad_budget_rejected(self):
        _repo, _instance, index = sweep_case(IdenWeights, SingleCoverage, 0)
        with pytest.raises(InvalidBudgetError):
            constrained_select(index, ConstraintSpec.build(), 0)


class TestCeilingExhaustion:
    def test_ceilings_below_budget_stop_early(self):
        """Restricted to one property's buckets with ceilings summing to
        3, the solver must stop at 3 picks — never violate, never spin."""
        _repo, instance, index = sweep_case(IdenWeights, SingleCoverage, 0)
        counts = np.diff(index.g_indptr)
        by_property = {}
        for g, key in enumerate(index.group_keys):
            by_property.setdefault(key.property_label, []).append(g)
        label, gids = max(
            sorted(by_property.items()),
            key=lambda e: sum(int(counts[g]) for g in e[1]),
        )
        pool = sorted(
            {
                str(index.users[int(r)])
                for r in index.members_of_rows(
                    np.asarray(gids, dtype=np.int64)
                )
            }
        )
        caps = [2, 1] + [0] * (len(gids) - 2)
        spec = ConstraintSpec.build(
            ceilings={
                index.group_keys[g]: cap for g, cap in zip(gids, caps)
            }
        )
        result = constrained_select(index, spec, BUDGET, candidates=pool)
        assert 0 < len(result.selected) <= 3
        assert result.satisfied
        selected, _gains, score = fair_select_oracle(
            instance, spec, BUDGET, candidates=pool
        )
        assert result.selected == tuple(selected)
        assert result.result.score == score

    def test_zero_ceiling_excludes_group_entirely(self):
        _repo, _instance, index = sweep_case(LBSWeights, SingleCoverage, 1)
        key, _size = _group_by_size(index, 0)
        gid = index.group_pos[key]
        members = {
            str(index.users[int(r)]) for r in index.members_of_rows(np.asarray([gid], dtype=np.int64))
        }
        spec = ConstraintSpec.build(ceilings={key: 0})
        result = constrained_select(index, spec, BUDGET)
        assert not members & set(result.selected)
        assert result.satisfied


class TestDegenerateClustering:
    def test_single_cluster_equals_plain_matrix_greedy(self):
        repo, instance, index = sweep_case(LBSWeights, SingleCoverage, 0)
        spec = ConstraintSpec.build(
            clusters=ClusterSpec(method="kmeans", k=1, seed=0)
        )
        clustered = constrained_select(index, spec, BUDGET)
        plain = greedy_select(repo, instance, method="matrix")
        assert clustered.selected == plain.selected
        assert clustered.result.score == plain.score
        assert clustered.result.gains == plain.gains

    def test_k_above_population_is_clamped(self):
        _repo, _instance, index = sweep_case(IdenWeights, SingleCoverage, 1)
        spec = ConstraintSpec.build(
            clusters=ClusterSpec(method="kmeans", k=500, seed=0)
        )
        result = constrained_select(index, spec, BUDGET)
        assert len(result.selected) == BUDGET


class TestCustomizationComposition:
    def test_constraints_on_customized_index(self):
        """Fair floors compose with the §6 rescaled index: the native run
        on ``customized_index`` must match the oracle on the rescaled
        *instance* — same weights, same refusal to cross bounds."""
        _repo, instance, index = sweep_case(LBSWeights, SingleCoverage, 0)
        counts = np.diff(index.g_indptr)
        order = sorted(
            range(index.n_groups),
            key=lambda g: (-int(counts[g]), str(index.group_keys[g])),
        )
        priority_key = index.group_keys[order[1]]
        floor_key = index.group_keys[order[0]]
        feedback = CustomizationFeedback(
            priority=frozenset({priority_key})
        )
        cidx = customized_index(instance, feedback)
        assert cidx is not None
        cinstance = customized_instance(instance, feedback)
        spec = ConstraintSpec.build(floors={floor_key: 2})
        native = constrained_select(cidx, spec, BUDGET)
        selected, _gains, score = fair_select_oracle(
            cinstance, spec, BUDGET
        )
        assert native.selected == tuple(selected)
        assert native.result.score == score
        assert native.satisfied
        assert subset_score(cinstance, list(native.selected)) == score

    def test_non_vectorizable_index_rejected(self):
        from repro.core import instance_index
        from repro.core.weights import EBSWeights

        _repo, instance, _index = sweep_case(EBSWeights, SingleCoverage, 2)
        index = instance_index(instance)
        assert not index.vectorizable
        spec = ConstraintSpec.build()
        with pytest.raises(PodiumError, match="vectorizable"):
            constrained_select(index, spec, BUDGET)
