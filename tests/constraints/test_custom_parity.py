"""Customization ↔ constraints cross-parity (satellite of the subsystem).

The paper's G₊/G₋ feedback (Def. 6.1) is the degenerate corner of the
constraint model: a must-not group is exactly a ceiling of 0, and a
must-have bucket is exactly "ceiling 0 on every sibling bucket" over the
users that carry the property.  Both halves now share one feasibility
rule (:mod:`repro.constraints.feasibility`), and these tests pin the
equivalence as exact sequence identity, not just equal scores.
"""

import numpy as np
import pytest

from repro.core import (
    CustomizationFeedback,
    custom_select,
    greedy_select,
)
from repro.core.weights import IdenWeights, LBSWeights, SingleCoverage
from repro.constraints import (
    ConstraintSpec,
    constrained_select,
    eligible_user_filter,
    keys_by_property,
)

from .conftest import sweep_case

BUDGET = 6


def _sized_keys(index):
    counts = np.diff(index.g_indptr)
    order = sorted(
        range(index.n_groups),
        key=lambda g: (-int(counts[g]), str(index.group_keys[g])),
    )
    return [index.group_keys[g] for g in order]


class TestMustNotIsZeroCeiling:
    @pytest.mark.parametrize("weight_cls", (IdenWeights, LBSWeights))
    @pytest.mark.parametrize("seed", (0, 1))
    def test_exact_sequence_identity(self, weight_cls, seed):
        repo, instance, index = sweep_case(weight_cls, SingleCoverage, seed)
        banned = _sized_keys(index)[0]
        custom = custom_select(
            repo,
            instance,
            CustomizationFeedback(must_not=frozenset({banned})),
            BUDGET,
        )
        constrained = constrained_select(
            index, ConstraintSpec.build(ceilings={banned: 0}), BUDGET
        )
        assert constrained.selected == custom.selected
        assert constrained.result.score == custom.standard_score


class TestMustHaveIsSiblingZeroCeilings:
    def test_exact_sequence_identity_over_carriers(self):
        """must_have = {bucket b of P} ≡ ceiling 0 on P's other buckets,
        restricted to the users that carry property P at all."""
        repo, instance, index = sweep_case(LBSWeights, SingleCoverage, 0)
        by_property = {}
        for g, key in enumerate(index.group_keys):
            by_property.setdefault(key.property_label, []).append(g)
        counts = np.diff(index.g_indptr)
        label, gids = next(
            (label, gids)
            for label, gids in sorted(by_property.items())
            if len(gids) >= 2 and all(counts[g] >= 2 for g in gids)
        )
        kept = index.group_keys[gids[0]]
        siblings = [index.group_keys[g] for g in gids[1:]]
        carriers = sorted(
            {
                str(index.users[int(r)])
                for r in index.members_of_rows(
                    np.asarray(gids, dtype=np.int64)
                )
            }
        )
        custom = custom_select(
            repo,
            instance,
            CustomizationFeedback(must_have=frozenset({kept})),
            BUDGET,
        )
        constrained = constrained_select(
            index,
            ConstraintSpec.build(ceilings={k: 0 for k in siblings}),
            BUDGET,
            candidates=carriers,
        )
        assert constrained.selected == custom.selected
        assert constrained.result.score == custom.standard_score


class TestFloorOneSanity:
    def test_floor_one_noop_when_greedy_already_covers(self):
        """When plain greedy already picks a member of G, floor(G)=1 must
        not change anything — the constrained run is the same run."""
        repo, instance, index = sweep_case(IdenWeights, SingleCoverage, 0)
        plain = greedy_select(repo, instance, method="matrix")
        hit = next(
            key
            for key in _sized_keys(index)
            if {
                str(index.users[int(r)])
                for r in index.members_of_rows(
                    np.asarray([index.group_pos[key]], dtype=np.int64)
                )
            }
            & set(plain.selected)
        )
        constrained = constrained_select(
            index, ConstraintSpec.build(floors={hit: 1}), BUDGET
        )
        assert constrained.selected == plain.selected
        assert constrained.result.score == plain.score

    def test_floor_one_forces_membership(self):
        repo, instance, index = sweep_case(IdenWeights, SingleCoverage, 1)
        plain = greedy_select(repo, instance, method="matrix")
        missed = next(
            key
            for key in reversed(_sized_keys(index))
            if not {
                str(index.users[int(r)])
                for r in index.members_of_rows(
                    np.asarray([index.group_pos[key]], dtype=np.int64)
                )
            }
            & set(plain.selected)
        )
        constrained = constrained_select(
            index, ConstraintSpec.build(floors={missed: 1}), BUDGET
        )
        members = {
            str(index.users[int(r)])
            for r in index.members_of_rows(
                np.asarray([index.group_pos[missed]], dtype=np.int64)
            )
        }
        assert members & set(constrained.selected)
        assert constrained.satisfied


class TestSharedFeasibilityRule:
    """Both consumers of the shared helper agree on every user."""

    def test_filter_matches_mask(self):
        _repo, _instance, index = sweep_case(LBSWeights, SingleCoverage, 0)
        from repro.constraints import eligibility_mask

        keys = _sized_keys(index)
        forbidden = frozenset({keys[0]})
        required = keys_by_property(sorted(
            {keys[1], keys[2]},
            key=lambda k: (k.property_label, k.bucket_label),
        ))
        required_sets = {
            label: set(bucket_keys) for label, bucket_keys in required.items()
        }
        mask = eligibility_mask(
            index, forbidden=forbidden, required_by_property=required
        )
        for row in range(index.n_users):
            memberships = {
                index.group_keys[int(g)] for g in index.groups_of_row(row)
            }
            assert mask[row] == eligible_user_filter(
                memberships, forbidden, required_sets
            ), f"row {row}"
