"""Backend parity sweep: eager == lazy == matrix, every scheme combo.

The three greedy backends promise byte-identical ``selected``/``score``
sequences when ``rng`` is None, across every weight (Iden/LBS/EBS) ×
coverage (Single/Prop) combination — including EBS instances whose
``(B + 1)^rank`` weights overflow int64, where the matrix backend must
silently take the exact fallback path with no wrong scores.
"""

import numpy as np
import pytest

from repro.core import (
    GroupingConfig,
    build_instance,
    build_simple_groups,
    greedy_select,
    instance_index,
    subset_score,
)
from repro.core.weights import (
    EBSWeights,
    IdenWeights,
    LBSWeights,
    PropCoverage,
    SingleCoverage,
)
from repro.datasets.synth import generate_profile_repository

WEIGHTS = (IdenWeights, LBSWeights, EBSWeights)
COVERAGES = (SingleCoverage, PropCoverage)
BACKENDS = ("eager", "lazy", "matrix")


def _sweep_instance(weight_cls, coverage_cls, seed, n_users=60, budget=6):
    repo = generate_profile_repository(
        n_users=n_users, n_properties=30, mean_profile_size=10.0, seed=seed
    )
    groups = build_simple_groups(repo, GroupingConfig())
    instance = build_instance(
        repo,
        budget=budget,
        groups=groups,
        weight_scheme=weight_cls(),
        coverage_scheme=coverage_cls(),
    )
    return repo, instance


class TestParitySweep:
    @pytest.mark.parametrize("weight_cls", WEIGHTS)
    @pytest.mark.parametrize("coverage_cls", COVERAGES)
    @pytest.mark.parametrize("seed", (0, 1))
    def test_backends_select_identical_sequences(
        self, weight_cls, coverage_cls, seed
    ):
        repo, instance = _sweep_instance(weight_cls, coverage_cls, seed)
        results = {
            backend: greedy_select(repo, instance, method=backend)
            for backend in BACKENDS
        }
        reference = results["eager"]
        for backend in ("lazy", "matrix"):
            assert results[backend].selected == reference.selected, backend
            assert results[backend].score == reference.score, backend
            assert results[backend].gains == reference.gains, backend
        # The realized score is the from-scratch score of the subset.
        assert subset_score(instance, reference.selected) == reference.score

    def test_ebs_overflow_triggers_exact_fallback(self):
        """EBS at realistic rank counts overflows int64: the index must
        refuse to vectorize and the matrix backend must still be exact."""
        repo, instance = _sweep_instance(EBSWeights, SingleCoverage, seed=2)
        index = instance_index(instance)
        # (B + 1)^rank with dozens of ranked groups dwarfs 2**63.
        assert max(instance.wei.values()) > np.iinfo(np.int64).max
        assert not index.vectorizable
        assert index.wei is None and index.initial_gains is None

        eager = greedy_select(repo, instance, method="eager")
        matrix = greedy_select(repo, instance, method="matrix")
        assert matrix.selected == eager.selected
        assert matrix.score == eager.score
        assert subset_score(instance, matrix.selected) == eager.score

    def test_small_instances_vectorize(self):
        """LBS/Iden weights stay far inside int64: no fallback expected."""
        for weight_cls in (IdenWeights, LBSWeights):
            _, instance = _sweep_instance(weight_cls, SingleCoverage, seed=0)
            assert instance_index(instance).vectorizable

    def test_matrix_respects_candidate_pool(self):
        repo, instance = _sweep_instance(LBSWeights, SingleCoverage, seed=0)
        pool = sorted(repo.user_ids)[:20]
        eager = greedy_select(repo, instance, candidates=pool, method="eager")
        matrix = greedy_select(repo, instance, candidates=pool, method="matrix")
        assert matrix.selected == eager.selected
        assert matrix.score == eager.score
        assert set(matrix.selected) <= set(pool)

    def test_matrix_with_rng_still_valid(self):
        """Randomized tie-breaking: same score guarantee, subset may vary."""
        repo, instance = _sweep_instance(IdenWeights, SingleCoverage, seed=3)
        rng = np.random.default_rng(11)
        result = greedy_select(repo, instance, method="matrix", rng=rng)
        assert len(result.selected) == len(set(result.selected))
        assert subset_score(instance, result.selected) == result.score


class TestIndexDtypes:
    """Small populations store CSR indices as int32; wei/cov stay int64."""

    @pytest.mark.parametrize("weight_cls", (IdenWeights, LBSWeights))
    def test_small_instances_use_int32_indices(self, weight_cls):
        _, instance = _sweep_instance(weight_cls, SingleCoverage, seed=0)
        index = instance_index(instance)
        assert index.u_indices.dtype == np.int32
        assert index.g_indices.dtype == np.int32
        # Accumulators must not narrow with the ids.
        assert index.wei.dtype == np.int64
        assert index.cov.dtype == np.int64

    def test_id_dtype_boundary(self):
        from repro.core.index import id_dtype

        assert id_dtype(10) is np.int32
        assert id_dtype(np.iinfo(np.int32).max) is np.int32
        assert id_dtype(2**31) is np.int64
