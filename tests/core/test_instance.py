"""Unit tests for diversification instances (Def. 3.3)."""

import pytest

from repro.core import (
    DiversificationInstance,
    IdenWeights,
    InvalidBudgetError,
    InvalidInstanceError,
    PropCoverage,
    build_instance,
)
from repro.core.groups import GroupKey


class TestBuildInstance:
    def test_defaults_are_lbs_single(self, table2_repo, table2_groups):
        instance = build_instance(table2_repo, budget=2, groups=table2_groups)
        mex_high = GroupKey("avgRating Mexican", "high")
        assert instance.weight(mex_high) == 3  # LBS = group size
        assert instance.coverage(mex_high) == 1  # Single

    def test_builds_groups_when_missing(self, table2_repo):
        instance = build_instance(table2_repo, budget=2)
        assert len(instance.groups) > 0

    def test_custom_schemes(self, table2_repo, table2_groups):
        instance = build_instance(
            table2_repo,
            budget=3,
            groups=table2_groups,
            weight_scheme=IdenWeights(),
            coverage_scheme=PropCoverage(),
        )
        mex_high = GroupKey("avgRating Mexican", "high")
        assert instance.weight(mex_high) == 1
        # floor(3 * 3 / 5) = 1
        assert instance.coverage(mex_high) == 1

    def test_bad_budget(self, table2_repo):
        with pytest.raises(InvalidBudgetError):
            build_instance(table2_repo, budget=0)

    def test_population_size_recorded(self, table2_repo, table2_groups):
        instance = build_instance(table2_repo, budget=2, groups=table2_groups)
        assert instance.population_size == 5


class TestValidation:
    def test_missing_weight_rejected(self, table2_instance):
        broken = dict(table2_instance.wei)
        broken.pop(next(iter(broken)))
        with pytest.raises(InvalidInstanceError):
            DiversificationInstance(
                groups=table2_instance.groups,
                wei=broken,
                cov=dict(table2_instance.cov),
                budget=2,
                population_size=5,
            )

    def test_non_positive_weight_rejected(self, table2_instance):
        broken = dict(table2_instance.wei)
        broken[next(iter(broken))] = 0
        with pytest.raises(InvalidInstanceError):
            DiversificationInstance(
                groups=table2_instance.groups,
                wei=broken,
                cov=dict(table2_instance.cov),
                budget=2,
                population_size=5,
            )

    def test_fractional_coverage_rejected(self, table2_instance):
        broken = dict(table2_instance.cov)
        broken[next(iter(broken))] = 1.5
        with pytest.raises(InvalidInstanceError):
            DiversificationInstance(
                groups=table2_instance.groups,
                wei=dict(table2_instance.wei),
                cov=broken,
                budget=2,
                population_size=5,
            )


class TestInstanceHelpers:
    def test_max_score_is_weight_times_coverage(self, table2_instance):
        expected = sum(
            table2_instance.wei[k] * table2_instance.cov[k]
            for k in table2_instance.groups.keys
        )
        assert table2_instance.max_score() == expected

    def test_restricted_to_groups(self, table2_instance):
        keep = [GroupKey("livesIn Tokyo", "true")]
        sub = table2_instance.restricted_to_groups(keep)
        assert len(sub.groups) == 1
        assert set(sub.wei) == set(keep)
        assert set(sub.cov) == set(keep)
        assert sub.budget == table2_instance.budget
