"""Unit tests for customization (paper §6, Examples 6.2 and 6.4)."""

import pytest

from repro.core import (
    CustomizationFeedback,
    InfeasibleSelectionError,
    InvalidFeedbackError,
    custom_select,
    refine_users,
    subset_score,
)
from repro.core.customization import (
    _integer_weight_scale,
    customized_instance,
    feedback_group_coverage,
)
from repro.core.groups import Group, GroupKey, GroupSet
from repro.core.instance import DiversificationInstance
from repro.core.profiles import UserProfile, UserRepository


@pytest.fixture()
def example_62_feedback(table2_groups):
    """Example 6.2: must have rated Mexican; prioritize livesIn <city>."""
    mexican = frozenset(
        g.key for g in table2_groups.buckets_of_property("avgRating Mexican")
    )
    lives_in = frozenset(
        g.key
        for g in table2_groups
        if g.key.property_label.startswith("livesIn ")
    )
    return CustomizationFeedback(must_have=mexican, priority=lives_in)


class TestFeedbackDefaults:
    def test_none_is_empty(self):
        feedback = CustomizationFeedback.none()
        assert feedback.must_have == frozenset()
        assert feedback.must_not == frozenset()
        assert feedback.priority == frozenset()
        assert feedback.standard is None

    def test_default_standard_is_complement(self, table2_groups):
        feedback = CustomizationFeedback(
            priority=frozenset({GroupKey("livesIn Tokyo", "true")})
        )
        standard = feedback.resolve_standard(table2_groups)
        assert GroupKey("livesIn Tokyo", "true") not in standard
        assert len(standard) == len(table2_groups) - 1

    def test_explicit_standard_respected(self, table2_groups):
        only = frozenset({GroupKey("livesIn NYC", "true")})
        feedback = CustomizationFeedback(standard=only)
        assert feedback.resolve_standard(table2_groups) == only

    def test_validate_rejects_unknown_groups(self, table2_groups):
        feedback = CustomizationFeedback(
            must_have=frozenset({GroupKey("noSuch", "high")})
        )
        with pytest.raises(InvalidFeedbackError):
            feedback.validate(table2_groups)


class TestRefineUsers:
    def test_example_6_4_excludes_carol(
        self, table2_repo, table2_groups, example_62_feedback
    ):
        pool = refine_users(table2_repo, table2_groups, example_62_feedback)
        assert "Carol" not in pool
        assert set(pool) == {"Alice", "Bob", "David", "Eve"}

    def test_must_have_buckets_of_one_property_are_disjunctive(
        self, table2_repo, table2_groups
    ):
        """Def. 6.1: multiple buckets of one property need only one hit."""
        feedback = CustomizationFeedback(
            must_have=frozenset(
                {
                    GroupKey("avgRating Mexican", "high"),
                    GroupKey("avgRating Mexican", "low"),
                }
            )
        )
        pool = refine_users(table2_repo, table2_groups, feedback)
        # Bob is 'low', Alice/David/Eve are 'high'; Carol has no rating.
        assert set(pool) == {"Alice", "Bob", "David", "Eve"}

    def test_must_have_across_properties_is_conjunctive(
        self, table2_repo, table2_groups
    ):
        feedback = CustomizationFeedback(
            must_have=frozenset(
                {
                    GroupKey("avgRating Mexican", "high"),
                    GroupKey("livesIn Tokyo", "true"),
                }
            )
        )
        pool = refine_users(table2_repo, table2_groups, feedback)
        assert set(pool) == {"Alice", "David"}

    def test_must_not_filters_members(self, table2_repo, table2_groups):
        feedback = CustomizationFeedback(
            must_not=frozenset({GroupKey("livesIn Tokyo", "true")})
        )
        pool = refine_users(table2_repo, table2_groups, feedback)
        assert set(pool) == {"Bob", "Carol", "Eve"}

    def test_empty_feedback_keeps_everyone(self, table2_repo, table2_groups):
        pool = refine_users(
            table2_repo, table2_groups, CustomizationFeedback.none()
        )
        assert set(pool) == set(table2_repo.user_ids)


class TestCustomizedInstance:
    def test_priority_weights_scaled(self, table2_instance):
        tokyo = GroupKey("livesIn Tokyo", "true")
        feedback = CustomizationFeedback(priority=frozenset({tokyo}))
        scaled = customized_instance(table2_instance, feedback)
        standard_max = sum(
            table2_instance.wei[k] * table2_instance.cov[k]
            for k in table2_instance.groups.keys
            if k != tokyo
        )
        assert scaled.wei[tokyo] == table2_instance.wei[tokyo] * (
            standard_max + 1
        )

    def test_ignored_groups_dropped(self, table2_instance):
        tokyo = GroupKey("livesIn Tokyo", "true")
        nyc = GroupKey("livesIn NYC", "true")
        feedback = CustomizationFeedback(
            priority=frozenset({tokyo}), standard=frozenset({nyc})
        )
        scaled = customized_instance(table2_instance, feedback)
        assert set(scaled.groups.keys) == {tokyo, nyc}

    def test_lexicographic_dominance(self, table2_repo, table2_instance):
        """One covered priority group must outweigh ALL standard groups."""
        paris = GroupKey("livesIn Paris", "true")  # only Eve
        feedback = CustomizationFeedback(priority=frozenset({paris}))
        scaled = customized_instance(table2_instance, feedback)
        eve_only = subset_score(scaled, ["Eve"])
        # Alice has the best standard score but no Paris membership.
        alice_only = subset_score(scaled, ["Alice"])
        assert eve_only > alice_only


class TestCustomSelect:
    def test_example_6_4_selects_alice_eve(
        self, table2_repo, table2_instance, example_62_feedback
    ):
        custom = custom_select(
            table2_repo, table2_instance, example_62_feedback
        )
        assert set(custom.selected) == {"Alice", "Eve"}
        assert custom.refined_pool_size == 4
        # Max livesIn weight sum achievable with 2 users is 3 (Tokyo 2 +
        # any other city 1).
        assert custom.priority_score == 3
        assert custom.standard_score == 14

    def test_infeasible_filters_raise(self, table2_repo, table2_instance):
        feedback = CustomizationFeedback(
            must_have=frozenset({GroupKey("livesIn Tokyo", "true")}),
            must_not=frozenset({GroupKey("livesIn Tokyo", "true")}),
        )
        with pytest.raises(InfeasibleSelectionError):
            custom_select(table2_repo, table2_instance, feedback)

    def test_empty_feedback_matches_base(self, table2_repo, table2_instance):
        custom = custom_select(
            table2_repo, table2_instance, CustomizationFeedback.none()
        )
        assert set(custom.selected) == {"Alice", "Eve"}
        assert custom.priority_score == 0

    def test_priority_changes_selection(self, table2_repo, table2_instance):
        """Prioritizing Bob-only groups pulls Bob into the subset."""
        feedback = CustomizationFeedback(
            priority=frozenset(
                {
                    GroupKey("livesIn NYC", "true"),
                    GroupKey("avgRating CheapEats", "high"),
                }
            )
        )
        custom = custom_select(table2_repo, table2_instance, feedback)
        assert "Bob" in custom.selected


class TestFeedbackGroupCoverage:
    def test_no_priority_is_full(self, table2_instance):
        assert (
            feedback_group_coverage(
                table2_instance, CustomizationFeedback.none(), ["Alice"]
            )
            == 1.0
        )

    def test_partial_coverage(self, table2_instance):
        feedback = CustomizationFeedback(
            priority=frozenset(
                {
                    GroupKey("livesIn Tokyo", "true"),
                    GroupKey("livesIn NYC", "true"),
                }
            )
        )
        assert (
            feedback_group_coverage(table2_instance, feedback, ["Alice"])
            == 0.5
        )


def _feedback_combos(instance):
    """A sweep of feedback shapes derived from the instance's own groups."""
    by_property = {}
    for key in sorted(instance.groups.keys, key=str):
        by_property.setdefault(key.property_label, []).append(key)
    labels = sorted(by_property)
    first = frozenset(by_property[labels[0]])
    last = frozenset(by_property[labels[-1]])
    one_key = next(iter(sorted(last, key=str)))
    combos = [
        CustomizationFeedback(must_have=first),
        CustomizationFeedback(must_not=frozenset({one_key})),
        CustomizationFeedback(priority=last),
        CustomizationFeedback(priority=first, standard=last),
        CustomizationFeedback(
            must_have=first,
            must_not=frozenset({one_key}),
            priority=last - {one_key} or last,
        ),
    ]
    if len(labels) >= 3:
        combos.append(
            CustomizationFeedback(
                must_have=frozenset(by_property[labels[1]]),
                priority=first | last,
            )
        )
    return combos


class TestMatrixParity:
    """custom_select(method="matrix") must match the eager dict path."""

    def _assert_parity(self, repo, instance, feedback, budget=None):
        try:
            eager = custom_select(
                repo, instance, feedback, budget, method="eager"
            )
        except InfeasibleSelectionError:
            with pytest.raises(InfeasibleSelectionError):
                custom_select(
                    repo, instance, feedback, budget, method="matrix"
                )
            return
        matrix = custom_select(
            repo, instance, feedback, budget, method="matrix"
        )
        assert matrix.selected == eager.selected
        assert matrix.result.score == eager.result.score
        assert matrix.priority_score == eager.priority_score
        assert matrix.standard_score == eager.standard_score
        assert matrix.refined_pool_size == eager.refined_pool_size

    def test_table2_sweep(self, table2_repo, table2_instance):
        for feedback in _feedback_combos(table2_instance):
            self._assert_parity(table2_repo, table2_instance, feedback)

    def test_table2_budget_sweep(
        self, table2_repo, table2_instance, example_62_feedback
    ):
        for budget in (1, 2, 3, 4):
            self._assert_parity(
                table2_repo, table2_instance, example_62_feedback, budget
            )

    def test_small_repo_sweep(self, small_profile_repo, small_instance):
        for feedback in _feedback_combos(small_instance):
            self._assert_parity(
                small_profile_repo, small_instance, feedback
            )

    def test_example_6_4_matrix(
        self, table2_repo, table2_instance, example_62_feedback
    ):
        custom = custom_select(
            table2_repo,
            table2_instance,
            example_62_feedback,
            method="matrix",
        )
        assert set(custom.selected) == {"Alice", "Eve"}
        assert custom.refined_pool_size == 4


class TestExactLexicographicScale:
    """Float weights must not break priority dominance (exact rescaling)."""

    @staticmethod
    def _float_instance():
        groups = GroupSet(
            [
                Group(GroupKey("rating", "a"), frozenset({"u1"})),
                Group(GroupKey("rating", "b"), frozenset({"u1"})),
                Group(GroupKey("rating", "c"), frozenset({"u2"})),
                Group(GroupKey("volume", "big"), frozenset({"u2"})),
            ]
        )
        # Adversarially close: exactly, 0.1 + 0.2 exceeds 0.3 by ~5.5e-17
        # (binary rationals), so u1's priority score wins — but only by
        # an amount a float rescale multiplied into a 1e8 standard score
        # would wash out entirely.
        wei = {
            GroupKey("rating", "a"): 0.1,
            GroupKey("rating", "b"): 0.2,
            GroupKey("rating", "c"): 0.3,
            GroupKey("volume", "big"): 1e8,
        }
        cov = {key: 1 for key in wei}
        instance = DiversificationInstance(
            groups=groups, wei=wei, cov=cov, budget=1, population_size=2
        )
        repo = UserRepository(
            [UserProfile("u1", {"x": 1.0}), UserProfile("u2", {"x": 1.0})]
        )
        return repo, instance

    def test_priority_dominates_despite_floats(self):
        repo, instance = self._float_instance()
        feedback = CustomizationFeedback(
            priority=frozenset(
                {
                    GroupKey("rating", "a"),
                    GroupKey("rating", "b"),
                    GroupKey("rating", "c"),
                }
            )
        )
        for method in ("eager", "matrix"):
            custom = custom_select(
                repo, instance, feedback, budget=1, method=method
            )
            # u1's exact priority score 0.1+0.2 beats u2's 0.3, so the
            # 1e8 standard-tier gain of u2 must not flip the choice.
            assert custom.selected == ("u1",)
        # A naive float scale would have picked u2: the priority edge
        # times (standard_max + 1) is dwarfed by the standard score.
        naive_gap = (0.1 + 0.2 - 0.3) * (1e8 + 1)
        assert naive_gap < 1e8

    def test_rescaled_weights_are_exact(self):
        _, instance = self._float_instance()
        feedback = CustomizationFeedback(
            priority=frozenset({GroupKey("rating", "a")})
        )
        rescaled = customized_instance(instance, feedback)
        from fractions import Fraction

        scaled = rescaled.wei[GroupKey("rating", "a")]
        assert isinstance(scaled, Fraction)
        # Dominance bound: the smallest representable priority gain,
        # scaled, exceeds the best achievable standard score.
        standard_max = (
            Fraction(0.2) + Fraction(0.3) + Fraction(100000000.0)
        )
        assert scaled > standard_max

    def test_integer_weight_scale_int_fast_path(self):
        assert _integer_weight_scale(14) == 15
        assert _integer_weight_scale(0) == 1

    def test_integer_weight_scale_float_dominance(self):
        from fractions import Fraction

        scale = _integer_weight_scale(1e8, [0.1, 0.2, 0.3])
        delta = Fraction(0.1) + Fraction(0.2) - Fraction(0.3)
        assert delta > 0
        assert delta * scale > Fraction(10**8)
