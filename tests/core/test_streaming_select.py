"""Lazy mmap index open + streaming sharded selection (out-of-core tier)."""

import numpy as np
import pytest

from repro.core import (
    DatasetError,
    LazyUserIds,
    SortedIdPositions,
    build_columnar_instance,
    build_index_external,
    index_source_path,
    load_index_npz,
    open_index_npz,
    save_index_npz,
    select_from_index,
    select_sharded_streaming,
)
from repro.datasets.synth import generate_profile_columns


@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory):
    """An externally built checkpoint plus its in-RAM twin index."""
    tmp = tmp_path_factory.mktemp("streaming")
    store = generate_profile_columns(
        n_users=900,
        n_properties=14,
        mean_profile_size=4.0,
        seed=21,
        store_dir=tmp / "store",
    )
    path = tmp / "index.npz"
    build_index_external(store, budget=12, out_path=path, run_entries=512)
    columns = generate_profile_columns(
        n_users=900, n_properties=14, mean_profile_size=4.0, seed=21
    )
    ram = build_columnar_instance(columns, budget=12).index
    return path, ram


class TestLazyOpen:
    def test_members_are_memmaps(self, checkpoint):
        path, ram = checkpoint
        index = open_index_npz(path)
        for name in ("u_indptr", "u_indices", "g_indptr", "g_indices",
                     "cov", "wei", "initial_gains"):
            member = getattr(index, name)
            assert isinstance(member, np.memmap), name
            np.testing.assert_array_equal(member, getattr(ram, name), name)

    def test_lazy_users_behave_like_tuple(self, checkpoint):
        path, ram = checkpoint
        index = open_index_npz(path)
        assert isinstance(index.users, LazyUserIds)
        assert len(index.users) == len(ram.users)
        assert index.users[0] == ram.users[0]
        assert index.users[-1] == ram.users[-1]
        assert tuple(index.users[10:13]) == tuple(ram.users[10:13])
        assert list(index.users) == list(ram.users)

    def test_sorted_positions_behave_like_dict(self, checkpoint):
        path, ram = checkpoint
        index = open_index_npz(path)
        assert isinstance(index.user_pos, SortedIdPositions)
        assert len(index.user_pos) == len(ram.user_pos)
        some = ram.users[37]
        assert index.user_pos[some] == ram.user_pos[some]
        assert some in index.user_pos
        assert "nobody" not in index.user_pos
        assert index.user_pos.get("nobody") is None
        # Keys longer than the id width must not be truncated into a hit.
        assert (some + "x" * 40) not in index.user_pos
        assert dict(index.user_pos) == dict(ram.user_pos)

    def test_source_path_recorded(self, checkpoint):
        path, ram = checkpoint
        index = open_index_npz(path)
        assert index_source_path(index) == str(path)
        assert index_source_path(ram) is None

    def test_verify_catches_corruption(self, checkpoint, tmp_path):
        path, _ = checkpoint
        copy = tmp_path / "corrupt.npz"
        raw = bytearray(path.read_bytes())
        # Flip one byte in the middle of the payload.
        raw[len(raw) // 2] ^= 0xFF
        copy.write_bytes(bytes(raw))
        with pytest.raises(DatasetError, match="checksum"):
            open_index_npz(copy)

    def test_compressed_checkpoint_rejected(self, checkpoint, tmp_path):
        _, ram = checkpoint
        compressed = tmp_path / "compressed.npz"
        save_index_npz(ram, compressed, compressed=True)  # deflated: not mappable
        with pytest.raises(DatasetError):
            open_index_npz(compressed)


class TestStreamingSelection:
    def test_matrix_over_lazy_equals_in_ram(self, checkpoint):
        path, ram = checkpoint
        index = open_index_npz(path)
        lazy = select_from_index(index, 12, method="matrix")
        eager = select_from_index(ram, 12, method="matrix")
        assert lazy.selected == eager.selected
        assert lazy.score == eager.score

    def test_single_shard_equals_matrix(self, checkpoint):
        path, _ = checkpoint
        index = open_index_npz(path)
        exact = select_from_index(index, 12, method="matrix")
        streamed = select_sharded_streaming(index, 12, shards=1)
        assert streamed.selected == exact.selected
        assert streamed.score == exact.score

    def test_forked_jobs_match_serial(self, checkpoint):
        path, _ = checkpoint
        index = open_index_npz(path)
        serial = select_sharded_streaming(index, 12, shards=3, jobs=1)
        forked = select_sharded_streaming(index, 12, shards=3, jobs=3)
        assert forked.selected == serial.selected
        assert forked.score == serial.score

    def test_quality_floor_holds(self, checkpoint):
        path, _ = checkpoint
        index = open_index_npz(path)
        exact = select_from_index(index, 12, method="matrix")
        for shards in (2, 4):
            streamed = select_sharded_streaming(index, 12, shards=shards)
            assert len(streamed.selected) == 12
            assert streamed.score >= 0.95 * exact.score

    def test_in_ram_index_also_streams(self, checkpoint):
        path, ram = checkpoint
        index = open_index_npz(path)
        a = select_sharded_streaming(ram, 12, shards=3)
        b = select_sharded_streaming(index, 12, shards=3)
        assert a.selected == b.selected
        assert a.score == b.score

    def test_stochastic_over_lazy_matches_in_ram(self, checkpoint):
        path, ram = checkpoint
        lazy = select_from_index(
            open_index_npz(path), 12, method="stochastic",
            rng=np.random.default_rng(5),
        )
        eager = select_from_index(
            ram, 12, method="stochastic", rng=np.random.default_rng(5)
        )
        assert lazy.selected == eager.selected
        assert lazy.score == eager.score

    def test_load_index_npz_mmap_still_selects(self, checkpoint):
        path, ram = checkpoint
        restored = load_index_npz(path, mmap=True)
        result = select_from_index(restored, 12)
        exact = select_from_index(ram, 12)
        assert result.selected == exact.selected


class TestTakeRows:
    def test_subindex_gains_match_parent_restriction(self, checkpoint):
        _, ram = checkpoint
        rows = np.array([3, 17, 101, 500, 899], dtype=np.int64)
        sub = ram.take_rows(rows)
        assert sub.n_users == len(rows)
        assert [str(u) for u in sub.users] == [
            str(ram.users[int(r)]) for r in rows
        ]
        np.testing.assert_array_equal(sub.cov, ram.cov)
        np.testing.assert_array_equal(sub.wei, ram.wei)
        # Greedy over the sub-index == greedy over the parent restricted
        # to the same candidate ids.
        ids = [str(ram.users[int(r)]) for r in rows]
        mine = select_from_index(sub, 3)
        theirs = select_from_index(ram, 3, candidates=ids)
        assert mine.selected == theirs.selected
        assert mine.score == theirs.score

    def test_rows_must_be_strictly_ascending(self, checkpoint):
        _, ram = checkpoint
        with pytest.raises(ValueError, match="ascending"):
            ram.take_rows(np.array([5, 5, 9], dtype=np.int64))
        with pytest.raises(ValueError, match="ascending"):
            ram.take_rows(np.array([9, 5], dtype=np.int64))
