"""Unit tests for exhaustive optimal selection and approximation ratio."""

import pytest

from repro.core import (
    GroupingConfig,
    InvalidBudgetError,
    approximation_ratio,
    build_instance,
    build_simple_groups,
    greedy_select,
    optimal_select,
    subset_score,
)
from repro.experiments.optimal_ratio import GREEDY_BOUND
from repro.datasets.synth import generate_profile_repository


class TestOptimalSelect:
    def test_running_example_optimum_is_17(self, table2_repo, table2_instance):
        result = optimal_select(table2_repo, table2_instance)
        assert result.score == 17
        assert set(result.selected) == {"Alice", "Eve"}

    @pytest.mark.parametrize("seed", range(3))
    def test_pruned_equals_naive(self, seed):
        repo = generate_profile_repository(14, 20, 6.0, seed=seed)
        groups = build_simple_groups(repo, GroupingConfig())
        instance = build_instance(repo, budget=3, groups=groups)
        pruned = optimal_select(repo, instance, prune=True)
        naive = optimal_select(repo, instance, prune=False)
        assert pruned.score == naive.score

    def test_optimal_at_least_greedy(self, small_profile_repo, small_instance):
        greedy = greedy_select(small_profile_repo, small_instance, budget=4)
        best = optimal_select(small_profile_repo, small_instance, budget=4)
        assert best.score >= greedy.score

    def test_budget_larger_than_population(self, table2_repo, table2_instance):
        result = optimal_select(table2_repo, table2_instance, budget=99)
        assert set(result.selected) == set(table2_repo.user_ids)

    def test_candidates_restriction(self, table2_repo, table2_instance):
        result = optimal_select(
            table2_repo, table2_instance, candidates=["Bob", "Carol", "David"]
        )
        assert set(result.selected) <= {"Bob", "Carol", "David"}
        assert result.score == subset_score(table2_instance, result.selected)

    def test_bad_budget(self, table2_repo, table2_instance):
        with pytest.raises(InvalidBudgetError):
            optimal_select(table2_repo, table2_instance, budget=0)

    def test_gains_replay_consistent(self, table2_repo, table2_instance):
        result = optimal_select(table2_repo, table2_instance)
        assert sum(result.gains) == result.score


class TestApproximationRatio:
    def test_ratio_at_most_one(self, small_profile_repo, small_instance):
        ratio = approximation_ratio(
            small_profile_repo, small_instance, budget=4
        )
        assert 0.0 < ratio <= 1.0 + 1e-12

    @pytest.mark.parametrize("seed", range(4))
    def test_ratio_exceeds_theoretical_bound(self, seed):
        """Prop. 4.4's (1 − 1/e) bound must hold on every instance; §8.4
        reports near-1 ratios in practice."""
        repo = generate_profile_repository(25, 25, 8.0, seed=seed)
        groups = build_simple_groups(repo, GroupingConfig())
        instance = build_instance(repo, budget=4, groups=groups)
        ratio = approximation_ratio(repo, instance)
        assert ratio >= GREEDY_BOUND
