"""Columnar construction parity: columns → index ≡ dicts → index.

The columnar path promises the *same* instance as the dict pipeline fed
equivalent data — same group keys, memberships, weights and coverage —
and therefore identical selections, while never materializing per-user
Python dicts.  These tests pin that equivalence, the lazy dict views and
the column-native synth generator.
"""

import numpy as np
import pytest

from repro.core import (
    ColumnarProfiles,
    GroupingConfig,
    InvalidInstanceError,
    PodiumError,
    build_columnar_instance,
    build_instance,
    build_simple_groups,
    columnar_to_repository,
    greedy_select,
    instance_index,
    select_from_index,
    subset_score,
)
from repro.datasets.synth import (
    generate_profile_columns,
    generate_profile_repository,
)


@pytest.fixture(scope="module")
def columns():
    return generate_profile_columns(
        n_users=400, n_properties=25, mean_profile_size=6.0, seed=11
    )


def _dict_index(columns, budget, grouping=None, **schemes):
    repository = columnar_to_repository(columns)
    groups = build_simple_groups(repository, grouping or GroupingConfig())
    instance = build_instance(repository, budget, groups=groups, **schemes)
    return repository, instance, instance_index(instance)


class TestColumnarParity:
    @pytest.mark.parametrize("weights", ("Iden", "LBS"))
    @pytest.mark.parametrize("coverage", ("Single", "Prop"))
    def test_groups_weights_coverage_match_dict_path(
        self, columns, weights, coverage
    ):
        from repro.core.weights import coverage_scheme, weight_scheme

        columnar = build_columnar_instance(
            columns, budget=10, weight_scheme=weights, coverage_scheme=coverage
        )
        _, _, dict_index = _dict_index(
            columns,
            10,
            weight_scheme=weight_scheme(weights),
            coverage_scheme=coverage_scheme(coverage),
        )
        index = columnar.index
        assert set(index.group_keys) == set(dict_index.group_keys)
        assert index.users == dict_index.users
        for key in index.group_keys:
            gid = index.group_pos[key]
            other = dict_index.group_pos[key]
            mine = {
                index.users[r]
                for r in index.g_indices[
                    index.g_indptr[gid]:index.g_indptr[gid + 1]
                ]
            }
            theirs = {
                dict_index.users[r]
                for r in dict_index.g_indices[
                    dict_index.g_indptr[other]:dict_index.g_indptr[other + 1]
                ]
            }
            assert mine == theirs, key
            assert index.wei[gid] == dict_index.wei[other], key
            assert index.cov[gid] == dict_index.cov[other], key

    def test_selection_matches_dict_matrix_and_eager(self, columns):
        columnar = build_columnar_instance(columns, budget=10)
        repository, instance, _ = _dict_index(columns, 10)
        from_index = select_from_index(columnar.index, 10)
        eager = greedy_select(repository, instance, method="eager")
        matrix = greedy_select(repository, instance, method="matrix")
        assert from_index.selected == eager.selected == matrix.selected
        assert from_index.score == eager.score
        assert from_index.gains == eager.gains
        assert from_index.instance is None

    def test_from_repository_roundtrip(self):
        repository = generate_profile_repository(
            n_users=80, n_properties=15, mean_profile_size=5.0, seed=4
        )
        columns = ColumnarProfiles.from_repository(repository)
        back = columnar_to_repository(columns)
        assert back.user_ids == repository.user_ids
        for user_id in repository.user_ids:
            assert (
                back.profile(user_id).scores
                == repository.profile(user_id).scores
            )

    def test_min_support_and_fixed_splits_respected(self, columns):
        grouping = GroupingConfig(min_support=50, fixed_splits=(0.4, 0.65))
        columnar = build_columnar_instance(columns, budget=5, grouping=grouping)
        _, _, dict_index = _dict_index(columns, 5, grouping=grouping)
        assert set(columnar.index.group_keys) == set(dict_index.group_keys)
        assert (
            select_from_index(columnar.index, 5).selected
            == select_from_index(dict_index, 5).selected
        )


class TestColumnarViews:
    def test_to_instance_carries_prebuilt_index(self, columns):
        columnar = build_columnar_instance(columns, budget=8)
        instance = columnar.to_instance()
        # The lazy view reuses the columnar index — no re-encode.
        assert instance_index(instance) is columnar.index
        assert instance.population_size == columns.n_users
        assert (
            subset_score(instance, columnar.select().selected)
            == columnar.select().score
        )

    def test_view_selection_matches_index_selection(self, columns):
        columnar = build_columnar_instance(columns, budget=8)
        eager = greedy_select(
            columnar.to_repository(), columnar.to_instance(), method="eager"
        )
        assert eager.selected == columnar.select().selected

    def test_ebs_rejected(self, columns):
        with pytest.raises(PodiumError, match="EBS"):
            build_columnar_instance(columns, budget=5, weight_scheme="EBS")

    def test_bad_budget_rejected(self, columns):
        with pytest.raises(InvalidInstanceError):
            build_columnar_instance(columns, budget=0)


class TestColumnGenerator:
    def test_deterministic_per_seed(self):
        a = generate_profile_columns(200, 12, 4.0, seed=5)
        b = generate_profile_columns(200, 12, 4.0, seed=5)
        assert np.array_equal(a.user_col, b.user_col)
        assert np.array_equal(a.prop_col, b.prop_col)
        assert np.array_equal(a.score_col, b.score_col)
        c = generate_profile_columns(200, 12, 4.0, seed=6)
        assert not np.array_equal(a.score_col, c.score_col)

    def test_small_chunks_still_deterministic_and_complete(self):
        a = generate_profile_columns(300, 10, 3.0, seed=9, chunk=64)
        b = generate_profile_columns(300, 10, 3.0, seed=9, chunk=64)
        assert np.array_equal(a.user_col, b.user_col)
        assert np.array_equal(a.score_col, b.score_col)
        assert np.bincount(a.user_col, minlength=300).min() >= 1

    def test_profiles_valid(self):
        cols = generate_profile_columns(500, 20, 6.0, seed=1)
        assert cols.n_users == 500
        # Every user draws at least one property, no duplicates per user.
        sizes = np.bincount(cols.user_col, minlength=500)
        assert sizes.min() >= 1
        pairs = set(zip(cols.user_col.tolist(), cols.prop_col.tolist()))
        assert len(pairs) == cols.n_entries
        assert 0.0 <= cols.score_col.min() <= cols.score_col.max() <= 1.0

    def test_parallel_column_validation(self):
        cols = generate_profile_columns(50, 8, 3.0, seed=2)
        with pytest.raises(InvalidInstanceError):
            ColumnarProfiles(
                user_ids=cols.user_ids,
                property_labels=cols.property_labels,
                user_col=cols.user_col,
                prop_col=cols.prop_col,
                score_col=cols.score_col[:-1],
            )
