"""Unit tests for proportionate allocation (paper Def. 2.1, §2)."""

import pytest

from repro.core import (
    InvalidInstanceError,
    allocation_report,
    is_proportionate_allocation,
    proportionate_subset_exists,
)
from repro.core.buckets import Bucket
from repro.core.groups import Group, GroupKey, GroupSet


def group(prop: str, members) -> Group:
    return Group(
        GroupKey(prop, "true"),
        frozenset(members),
        Bucket(0.5, 1.0, "true", closed_hi=True),
    )


@pytest.fixture()
def disjoint_groups():
    """Stratified-sampling style: two disjoint halves of 8 users."""
    return GroupSet(
        [
            group("left", {f"u{i}" for i in range(4)}),
            group("right", {f"u{i}" for i in range(4, 8)}),
        ]
    )


class TestAllocationReport:
    def test_exact_proportionate_subset(self, disjoint_groups):
        # 2 of 8 with one user per half: shares 0.5 / 0.5 match.
        report = allocation_report(disjoint_groups, ["u0", "u5"], 8)
        assert report.is_proportionate
        assert report.worst_gap() == pytest.approx(0.0)

    def test_skewed_subset_detected(self, disjoint_groups):
        report = allocation_report(disjoint_groups, ["u0", "u1"], 8)
        assert not report.is_proportionate
        assert report.worst_gap() == pytest.approx(0.5)
        assert report.under_represented() == [GroupKey("right", "true")]

    def test_empty_subset_rejected(self, disjoint_groups):
        with pytest.raises(InvalidInstanceError):
            allocation_report(disjoint_groups, [], 8)

    def test_bad_population_rejected(self, disjoint_groups):
        with pytest.raises(InvalidInstanceError):
            allocation_report(disjoint_groups, ["u0"], 0)

    def test_checker_shortcut(self, disjoint_groups):
        assert is_proportionate_allocation(disjoint_groups, ["u0", "u5"], 8)
        assert not is_proportionate_allocation(disjoint_groups, ["u0"], 8)


class TestExistenceSearch:
    def test_finds_subset_for_disjoint_strata(self, disjoint_groups):
        users = [f"u{i}" for i in range(8)]
        assert proportionate_subset_exists(disjoint_groups, users, 2)

    def test_overlapping_groups_make_it_infeasible(self):
        """§2's argument: overlapping groups with incompatible share
        requirements admit no small proportionate subset."""
        users = [f"u{i}" for i in range(6)]
        groups = GroupSet(
            [
                group("a", {"u0", "u1", "u2"}),      # share 1/2
                group("b", {"u0"}),                  # share 1/6
                group("c", {"u1", "u2", "u3", "u4"}),  # share 2/3
            ]
        )
        # With |U|=2 or 3, shares 1/6 (needs a sixth) are unattainable.
        assert not proportionate_subset_exists(groups, users, 2)
        assert not proportionate_subset_exists(groups, users, 3)

    def test_search_space_guard(self, disjoint_groups):
        users = [f"u{i}" for i in range(8)]
        with pytest.raises(InvalidInstanceError):
            proportionate_subset_exists(
                disjoint_groups, users, 4, max_candidates=10
            )

    def test_running_example_has_no_proportionate_pair(
        self, table2_repo, table2_groups
    ):
        """Even the paper's five-user example admits no proportionate
        2-subset — groups of size 1 need a 1/5 share, impossible at
        |U| = 2 (shares are multiples of 1/2)."""
        assert not proportionate_subset_exists(
            table2_groups, table2_repo.user_ids, 2
        )

    def test_degenerate_sizes(self, disjoint_groups):
        users = [f"u{i}" for i in range(8)]
        assert not proportionate_subset_exists(disjoint_groups, users, 0)
        assert not proportionate_subset_exists(disjoint_groups, users, 99)
