"""Unit tests for subset scoring and incremental coverage state."""

import pytest

from repro.core import (
    CoverageState,
    PropCoverage,
    build_instance,
    covered_groups,
    subset_score,
)
from repro.core.groups import GroupKey


class TestSubsetScore:
    def test_running_example_scores(self, table2_instance):
        """Example 3.8: {Alice, Eve} scores 17 under LBS + Single."""
        assert subset_score(table2_instance, ["Alice", "Eve"]) == 17
        assert subset_score(table2_instance, ["Alice"]) == 10
        assert subset_score(table2_instance, ["Eve"]) == 10
        assert subset_score(table2_instance, []) == 0

    def test_excess_representation_not_rewarded(self, table2_instance):
        """Alice and David share groups; their union scores less than the
        sum of their solo scores (min with cov caps the reward)."""
        both = subset_score(table2_instance, ["Alice", "David"])
        assert both < subset_score(table2_instance, ["Alice"]) + subset_score(
            table2_instance, ["David"]
        )

    def test_order_insensitive(self, table2_instance):
        assert subset_score(table2_instance, ["Eve", "Alice"]) == subset_score(
            table2_instance, ["Alice", "Eve"]
        )

    def test_prop_coverage_rewards_repeats(self, table2_repo, table2_groups):
        instance = build_instance(
            table2_repo,
            budget=5,
            groups=table2_groups,
            coverage_scheme=PropCoverage(),
        )
        mex_high = GroupKey("avgRating Mexican", "high")
        assert instance.coverage(mex_high) == 3  # floor(5 * 3 / 5)
        one = subset_score(
            instance.restricted_to_groups([mex_high]), ["Alice"]
        )
        two = subset_score(
            instance.restricted_to_groups([mex_high]), ["Alice", "David"]
        )
        assert two == 2 * one


class TestCoveredGroups:
    def test_alice_covers_her_groups(self, table2_instance):
        covered = covered_groups(table2_instance, ["Alice"])
        assert GroupKey("livesIn Tokyo", "true") in covered
        assert GroupKey("avgRating Mexican", "high") in covered
        assert GroupKey("livesIn Paris", "true") not in covered

    def test_empty_subset_covers_nothing(self, table2_instance):
        assert covered_groups(table2_instance, []) == set()


class TestCoverageState:
    def test_incremental_matches_batch(self, table2_instance):
        state = CoverageState(table2_instance)
        running = []
        for user in ["Alice", "Bob", "Carol"]:
            state.add(user)
            running.append(user)
            assert state.score == subset_score(table2_instance, running)

    def test_marginal_gain_matches_score_delta(self, table2_instance):
        state = CoverageState(table2_instance)
        state.add("Alice")
        for candidate in ["Bob", "Carol", "David", "Eve"]:
            predicted = state.marginal_gain(candidate)
            actual = subset_score(
                table2_instance, ["Alice", candidate]
            ) - subset_score(table2_instance, ["Alice"])
            assert predicted == actual

    def test_example_4_3_marginals(self, table2_instance):
        """Example 4.3: initial marginals 10/5/7/7/10 (the paper's '6' for
        David is a typo — its own update arithmetic gives 7), and after
        Alice: Carol 5, David 2, Eve 7."""
        state = CoverageState(table2_instance)
        initial = {
            u: state.marginal_gain(u)
            for u in ["Alice", "Bob", "Carol", "David", "Eve"]
        }
        assert initial == {
            "Alice": 10, "Bob": 5, "Carol": 7, "David": 7, "Eve": 10,
        }
        state.add("Alice")
        assert state.marginal_gain("Carol") == 5
        assert state.marginal_gain("David") == 2
        assert state.marginal_gain("Eve") == 7
        assert state.marginal_gain("Bob") == 5  # shares nothing with Alice

    def test_add_returns_realized_gain(self, table2_instance):
        state = CoverageState(table2_instance)
        assert state.add("Alice") == 10
        assert state.add("Eve") == 7
        assert state.score == 17
        assert state.selected == ["Alice", "Eve"]

    def test_last_exhausted_groups(self, table2_instance):
        state = CoverageState(table2_instance)
        state.add("Alice")
        exhausted = set(state.last_exhausted())
        # With Single coverage every group Alice belongs to is exhausted.
        assert exhausted == table2_instance.groups.groups_of("Alice")

    def test_remaining_coverage_decrements(self, table2_instance):
        state = CoverageState(table2_instance)
        key = GroupKey("avgRating Mexican", "high")
        assert state.remaining_coverage(key) == 1
        state.add("Alice")
        assert state.remaining_coverage(key) == 0
        state.add("David")  # further members do not go negative
        assert state.remaining_coverage(key) == 0
