"""Unit tests for 1-d score bucketing (paper §3.2)."""

import numpy as np
import pytest

from repro.core import (
    Bucket,
    InvalidBucketError,
    boolean_partition,
    is_boolean,
    partition_from_splits,
    split_scores,
)
from repro.core.buckets import (
    STRATEGIES,
    em_splits,
    equal_width_splits,
    jenks_splits,
    kde_splits,
    kmeans1d_splits,
    quantile_splits,
)


class TestBucket:
    def test_half_open_contains(self):
        bucket = Bucket(0.2, 0.5, "mid")
        assert bucket.contains(0.2)
        assert bucket.contains(0.49)
        assert not bucket.contains(0.5)

    def test_closed_hi_contains_upper(self):
        bucket = Bucket(0.5, 1.0, "high", closed_hi=True)
        assert bucket.contains(1.0)

    def test_dunder_contains(self):
        bucket = Bucket(0.0, 0.5, "low")
        assert 0.25 in bucket
        assert "x" not in bucket

    @pytest.mark.parametrize("lo,hi", [(-0.1, 0.5), (0.5, 1.5), (0.7, 0.3)])
    def test_invalid_bounds(self, lo, hi):
        with pytest.raises(InvalidBucketError):
            Bucket(lo, hi, "bad")

    def test_degenerate_half_open_rejected(self):
        with pytest.raises(InvalidBucketError):
            Bucket(0.5, 0.5, "point")

    def test_degenerate_closed_allowed(self):
        assert Bucket(1.0, 1.0, "one", closed_hi=True).contains(1.0)

    def test_str_shows_interval(self):
        assert str(Bucket(0.0, 0.4, "low")) == "low [0, 0.4)"


class TestPartitionFromSplits:
    def test_three_buckets_default_labels(self):
        buckets = partition_from_splits((0.4, 0.65))
        assert [b.label for b in buckets] == ["low", "medium", "high"]
        assert buckets[0].lo == 0.0
        assert buckets[-1].hi == 1.0
        assert buckets[-1].closed_hi

    def test_partition_is_exhaustive_and_disjoint(self):
        buckets = partition_from_splits((0.3, 0.6, 0.9))
        for score in np.linspace(0, 1, 101):
            matches = [b for b in buckets if b.contains(float(score))]
            assert len(matches) == 1

    def test_custom_labels(self):
        buckets = partition_from_splits((0.5,), labels=("cold", "hot"))
        assert [b.label for b in buckets] == ["cold", "hot"]

    def test_label_count_mismatch(self):
        with pytest.raises(InvalidBucketError):
            partition_from_splits((0.5,), labels=("only-one",))

    def test_out_of_range_split(self):
        with pytest.raises(InvalidBucketError):
            partition_from_splits((0.0,))

    def test_non_increasing_splits(self):
        with pytest.raises(InvalidBucketError):
            partition_from_splits((0.6, 0.4))

    def test_many_buckets_generic_labels(self):
        buckets = partition_from_splits(tuple(i / 10 for i in range(1, 10)))
        assert buckets[0].label == "bucket-0"
        assert len(buckets) == 10


class TestBooleanDetection:
    def test_boolean_vector(self):
        assert is_boolean(np.array([0.0, 1.0, 1.0, 0.0]))

    def test_non_boolean_vector(self):
        assert not is_boolean(np.array([0.0, 0.5, 1.0]))

    def test_boolean_partition_labels(self):
        buckets = boolean_partition()
        assert [b.label for b in buckets] == ["false", "true"]
        assert buckets[0].contains(0.0)
        assert buckets[1].contains(1.0)


class TestStrategies:
    def test_equal_width(self):
        assert equal_width_splits(np.array([0.5]), 4) == [0.25, 0.5, 0.75]

    def test_quantile_on_uniform(self):
        scores = np.linspace(0.01, 0.99, 99)
        splits = quantile_splits(scores, 2)
        assert len(splits) == 1
        assert splits[0] == pytest.approx(0.5, abs=0.05)

    def test_jenks_recovers_separated_clusters(self, rng):
        scores = np.concatenate(
            [rng.normal(0.15, 0.02, 50), rng.normal(0.8, 0.02, 50)]
        ).clip(0, 1)
        splits = jenks_splits(scores, 2)
        assert len(splits) == 1
        assert 0.3 < splits[0] < 0.7

    def test_jenks_three_clusters(self, rng):
        scores = np.concatenate(
            [
                rng.normal(0.1, 0.02, 40),
                rng.normal(0.5, 0.02, 40),
                rng.normal(0.9, 0.02, 40),
            ]
        ).clip(0, 1)
        splits = jenks_splits(scores, 3)
        assert len(splits) == 2
        assert 0.2 < splits[0] < 0.4
        assert 0.6 < splits[1] < 0.8

    def test_jenks_constant_data(self):
        assert jenks_splits(np.full(20, 0.5), 3) == []

    def test_jenks_subsamples_large_input(self, rng):
        scores = rng.random(5000)
        splits = jenks_splits(scores, 3)
        assert len(splits) == 2

    def test_kmeans_recovers_separated_clusters(self, rng):
        scores = np.concatenate(
            [rng.normal(0.2, 0.03, 60), rng.normal(0.85, 0.03, 60)]
        ).clip(0, 1)
        splits = kmeans1d_splits(scores, 2)
        assert len(splits) == 1
        assert 0.35 < splits[0] < 0.75

    def test_em_recovers_separated_clusters(self, rng):
        scores = np.concatenate(
            [rng.normal(0.2, 0.03, 80), rng.normal(0.8, 0.03, 80)]
        ).clip(0, 1)
        splits = em_splits(scores, 2)
        assert len(splits) == 1
        assert 0.3 < splits[0] < 0.7

    def test_kde_recovers_separated_clusters(self, rng):
        scores = np.concatenate(
            [rng.normal(0.2, 0.04, 80), rng.normal(0.8, 0.04, 80)]
        ).clip(0, 1)
        splits = kde_splits(scores, 2)
        assert len(splits) >= 1
        assert any(0.3 < s < 0.7 for s in splits)

    def test_kde_unimodal_falls_back_to_quantiles(self, rng):
        scores = rng.normal(0.5, 0.05, 200).clip(0, 1)
        splits = kde_splits(scores, 3)
        assert len(splits) == 2  # quantile fallback yields k-1 splits

    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_every_strategy_yields_valid_partition(self, name, rng):
        scores = rng.beta(2, 2, 150)
        buckets = split_scores(scores, k=3, strategy=name)
        for score in scores:
            assert sum(b.contains(float(score)) for b in buckets) == 1


class TestSplitScores:
    def test_boolean_input_gets_boolean_partition(self):
        buckets = split_scores(np.array([0.0, 1.0, 1.0]), k=3)
        assert [b.label for b in buckets] == ["false", "true"]

    def test_empty_input_raises(self):
        with pytest.raises(InvalidBucketError):
            split_scores(np.array([]), k=3)

    def test_bad_k_raises(self):
        with pytest.raises(InvalidBucketError):
            split_scores(np.array([0.5]), k=0)

    def test_unknown_strategy_raises(self):
        with pytest.raises(InvalidBucketError):
            split_scores(np.array([0.2, 0.5]), strategy="magic")

    def test_constant_data_single_bucket(self):
        buckets = split_scores(np.full(10, 0.42), k=3)
        assert len(buckets) == 1
        assert buckets[0].contains(0.42)
