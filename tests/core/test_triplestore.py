"""Unit tests for the on-disk triple store (spill format + inspection)."""

import json

import numpy as np
import pytest

from repro.core import DatasetError
from repro.core.triplestore import (
    MANIFEST_NAME,
    TripleStore,
    TripleStoreWriter,
    find_triple_stores,
    inspect_triple_store,
    write_columns,
)
from repro.datasets.synth import generate_profile_columns


@pytest.fixture()
def spilled_store(tmp_path):
    """A small population spill-generated straight into a store."""
    return generate_profile_columns(
        n_users=400,
        n_properties=12,
        mean_profile_size=4.0,
        seed=7,
        store_dir=tmp_path / "triples",
    )


class TestWriterRoundtrip:
    def test_spill_matches_in_ram_generation(self, spilled_store):
        columns = generate_profile_columns(
            n_users=400, n_properties=12, mean_profile_size=4.0, seed=7
        )
        assert spilled_store.n_users == columns.n_users
        assert spilled_store.n_entries == columns.n_entries
        assert spilled_store.property_labels == columns.property_labels
        np.testing.assert_array_equal(
            spilled_store.column("user_col"), columns.user_col
        )
        np.testing.assert_array_equal(
            spilled_store.column("prop_col"), columns.prop_col
        )
        np.testing.assert_array_equal(
            spilled_store.column("score_col"), columns.score_col
        )

    def test_to_columnar_roundtrip(self, spilled_store):
        columns = generate_profile_columns(
            n_users=400, n_properties=12, mean_profile_size=4.0, seed=7
        )
        restored = spilled_store.to_columnar()
        np.testing.assert_array_equal(restored.user_col, columns.user_col)
        np.testing.assert_array_equal(restored.score_col, columns.score_col)
        assert list(restored.user_ids) == list(columns.user_ids)

    def test_checksums_verify(self, spilled_store):
        checks = spilled_store.verify_checksums()
        assert checks and all(checks.values())

    def test_corruption_detected(self, spilled_store):
        path = spilled_store.directory / "score_col.bin"
        raw = bytearray(path.read_bytes())
        raw[0] ^= 0xFF
        path.write_bytes(bytes(raw))
        checks = spilled_store.verify_checksums()
        assert checks["score_col"] is False

    def test_iter_entries_covers_all(self, spilled_store):
        seen = 0
        for users, props, scores in spilled_store.iter_entries(
            chunk_entries=97
        ):
            assert len(users) == len(props) == len(scores)
            assert len(users) <= 97
            seen += len(users)
        assert seen == spilled_store.n_entries


class TestWriteColumns:
    def test_migration_path_roundtrip(self, tmp_path):
        columns = generate_profile_columns(
            n_users=120, n_properties=9, mean_profile_size=3.0, seed=3
        )
        store = write_columns(columns, tmp_path / "t", chunk_entries=64)
        np.testing.assert_array_equal(
            store.column("user_col"), columns.user_col
        )
        assert store.n_users == columns.n_users
        # The generator emits pattern ids; write_columns stores them as an
        # explicit id array, and both spell the same strings.
        back = store.user_id_strings(np.arange(store.n_users))
        assert list(back) == list(columns.user_ids)


class TestInspection:
    def test_inspect_reports_counts_dtypes_checksums(self, spilled_store):
        summary = inspect_triple_store(spilled_store.directory)
        assert summary["n_users"] == 400
        assert summary["n_entries"] == spilled_store.n_entries
        assert summary["checksums"] == "ok"
        assert summary["columns"]["score_col"]["dtype"] == "<f8"
        assert (
            summary["columns"]["user_col"]["count"]
            == spilled_store.n_entries
        )

    def test_inspect_flags_mismatch(self, spilled_store):
        path = spilled_store.directory / "prop_col.bin"
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0x01
        path.write_bytes(bytes(raw))
        summary = inspect_triple_store(spilled_store.directory)
        assert summary["checksums"].startswith("mismatch")
        assert "prop_col" in summary["checksums"]

    def test_inspect_broken_manifest_reports_error(self, tmp_path):
        target = tmp_path / "broken"
        target.mkdir()
        (target / MANIFEST_NAME).write_text("{not json")
        summary = inspect_triple_store(target)
        assert summary["path"] == str(target)
        assert "error" in summary

    def test_find_triple_stores(self, tmp_path, spilled_store):
        nested = tmp_path / "copy"
        nested.mkdir()
        manifest = spilled_store.directory / MANIFEST_NAME
        (nested / MANIFEST_NAME).write_text(manifest.read_text())
        found = find_triple_stores(tmp_path)
        assert spilled_store.directory in found
        assert nested in found

    def test_open_rejects_wrong_format(self, spilled_store):
        manifest_path = spilled_store.directory / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["format"] = "something-else"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(DatasetError, match="format"):
            TripleStore.open(spilled_store.directory)


class TestWriterValidation:
    def test_mismatched_column_lengths_rejected(self, tmp_path):
        writer = TripleStoreWriter(
            tmp_path / "w",
            n_users=10,
            property_labels=("a", "b"),
        )
        writer.append("user_col", np.array([0, 1], dtype=np.int32))
        writer.append("prop_col", np.array([0, 1], dtype=np.int32))
        writer.append("score_col", np.array([0.5], dtype=np.float64))
        with pytest.raises(DatasetError, match="parallel"):
            writer.finalize()
