"""Unit tests for greedy Algorithm 1 (paper §4)."""

import numpy as np
import pytest

from repro.core import (
    GroupingConfig,
    InvalidBudgetError,
    PodiumError,
    build_instance,
    build_simple_groups,
    greedy_select,
    subset_score,
)
from repro.core.weights import EBSWeights, IdenWeights, PropCoverage
from repro.datasets.synth import generate_profile_repository


class TestRunningExample:
    def test_lbs_single_selects_alice_eve(self, table2_repo, table2_instance):
        result = greedy_select(table2_repo, table2_instance)
        assert set(result.selected) == {"Alice", "Eve"}
        assert result.score == 17
        assert result.gains == (10, 7)

    def test_iden_selects_alice_bob(self, table2_repo, table2_groups):
        """Example 3.8: Iden tends to eccentric users — Bob joins Alice."""
        instance = build_instance(
            table2_repo, budget=2, groups=table2_groups,
            weight_scheme=IdenWeights(),
        )
        result = greedy_select(table2_repo, instance)
        assert set(result.selected) == {"Alice", "Bob"}
        assert result.score == 11

    def test_full_budget_takes_everyone(self, table2_repo, table2_groups):
        instance = build_instance(table2_repo, budget=10, groups=table2_groups)
        result = greedy_select(table2_repo, instance, budget=10)
        assert set(result.selected) == set(table2_repo.user_ids)

    def test_budget_one(self, table2_repo, table2_instance):
        result = greedy_select(table2_repo, table2_instance, budget=1)
        assert result.selected in (("Alice",), ("Eve",))
        assert result.score == 10


class TestMethods:
    @pytest.mark.parametrize("seed", range(4))
    def test_eager_and_lazy_agree_on_score(self, seed):
        repo = generate_profile_repository(50, 30, 10.0, seed=seed)
        groups = build_simple_groups(repo, GroupingConfig())
        instance = build_instance(repo, budget=6, groups=groups)
        eager = greedy_select(repo, instance, method="eager")
        lazy = greedy_select(repo, instance, method="lazy")
        assert eager.score == lazy.score

    def test_lazy_handles_ebs_big_integers(self, table2_repo, table2_groups):
        instance = build_instance(
            table2_repo, budget=2, groups=table2_groups,
            weight_scheme=EBSWeights(),
        )
        result = greedy_select(table2_repo, instance, method="lazy")
        assert len(result.selected) == 2
        eager = greedy_select(table2_repo, instance, method="eager")
        assert result.score == eager.score

    def test_unknown_method_raises(self, table2_repo, table2_instance):
        with pytest.raises(PodiumError):
            greedy_select(table2_repo, table2_instance, method="bogus")


class TestParameters:
    def test_bad_budget_raises(self, table2_repo, table2_instance):
        with pytest.raises(InvalidBudgetError):
            greedy_select(table2_repo, table2_instance, budget=0)

    def test_candidates_restrict_pool(self, table2_repo, table2_instance):
        result = greedy_select(
            table2_repo, table2_instance, candidates=["Bob", "Carol"]
        )
        assert set(result.selected) <= {"Bob", "Carol"}

    def test_unknown_candidates_ignored(self, table2_repo, table2_instance):
        result = greedy_select(
            table2_repo, table2_instance, candidates=["Bob", "Ghost"]
        )
        assert result.selected == ("Bob",)

    def test_default_budget_is_instance_budget(self, table2_repo, table2_instance):
        result = greedy_select(table2_repo, table2_instance)
        assert len(result.selected) == table2_instance.budget

    def test_gains_sum_to_score(self, small_profile_repo, small_instance):
        result = greedy_select(small_profile_repo, small_instance)
        assert sum(result.gains) == result.score

    def test_gains_non_increasing(self, small_profile_repo, small_instance):
        """Greedy on a submodular objective yields non-increasing gains."""
        result = greedy_select(small_profile_repo, small_instance)
        gains = list(result.gains)
        assert gains == sorted(gains, reverse=True)


class TestTieBreaking:
    def test_deterministic_without_rng(self, table2_repo, table2_instance):
        runs = {
            greedy_select(table2_repo, table2_instance).selected
            for _ in range(5)
        }
        assert len(runs) == 1

    def test_rng_can_flip_first_pick(self, table2_repo, table2_instance):
        """Alice and Eve tie at 10; random tie-breaking explores both."""
        firsts = {
            greedy_select(
                table2_repo,
                table2_instance,
                rng=np.random.default_rng(seed),
            ).selected[0]
            for seed in range(30)
        }
        assert firsts == {"Alice", "Eve"}

    def test_rng_preserves_score(self, table2_repo, table2_instance):
        for seed in range(10):
            result = greedy_select(
                table2_repo,
                table2_instance,
                rng=np.random.default_rng(seed),
            )
            assert result.score == 17


class TestSelectionResult:
    def test_container_protocol(self, table2_repo, table2_instance):
        result = greedy_select(table2_repo, table2_instance)
        assert len(result) == 2
        assert "Alice" in result
        assert "Carol" not in result

    def test_mismatched_gains_rejected(self, table2_instance):
        from repro.core import SelectionResult

        with pytest.raises(PodiumError):
            SelectionResult(("a",), 1, (), table2_instance)


class TestQuality:
    @pytest.mark.parametrize("seed", range(3))
    def test_beats_random_on_average(self, seed):
        repo = generate_profile_repository(80, 50, 15.0, seed=seed)
        groups = build_simple_groups(repo, GroupingConfig())
        instance = build_instance(repo, budget=6, groups=groups)
        greedy_score = greedy_select(repo, instance).score
        rng = np.random.default_rng(seed)
        random_scores = []
        for _ in range(20):
            picked = rng.choice(repo.user_ids, size=6, replace=False)
            random_scores.append(subset_score(instance, picked.tolist()))
        assert greedy_score >= max(random_scores)

    def test_prop_coverage_supported(self, table2_repo, table2_groups):
        instance = build_instance(
            table2_repo, budget=4, groups=table2_groups,
            coverage_scheme=PropCoverage(),
        )
        result = greedy_select(table2_repo, instance)
        assert len(result.selected) == 4
        assert result.score == subset_score(instance, result.selected)
