"""Sharded (GreeDi) and stochastic greedy backend guarantees.

Pinned behaviors from the issue: determinism under fixed seeds, the
degenerate cases (``shards=1`` ≡ matrix, ``sample_ratio=1.0`` ≡ eager),
parallel shard solving changing nothing, exact-fallback parity on
non-vectorizable instances, and a ≥0.95 quality-ratio floor against the
exact greedy on seeded synthetic instances.
"""

import numpy as np
import pytest

from repro.core import (
    GroupingConfig,
    PodiumError,
    build_instance,
    build_simple_groups,
    greedy_select,
    instance_index,
    select_from_index,
    subset_score,
)
from repro.core.weights import EBSWeights
from repro.datasets.synth import generate_profile_repository

QUALITY_FLOOR = 0.95


def _instance(seed, n_users=150, budget=10, **schemes):
    repo = generate_profile_repository(
        n_users=n_users, n_properties=30, mean_profile_size=8.0, seed=seed
    )
    groups = build_simple_groups(repo, GroupingConfig())
    return repo, build_instance(repo, budget=budget, groups=groups, **schemes)


class TestSharded:
    def test_shards_1_reproduces_matrix_exactly(self):
        repo, instance = _instance(seed=0)
        matrix = greedy_select(repo, instance, method="matrix")
        sharded = greedy_select(repo, instance, method="sharded", shards=1)
        assert sharded.selected == matrix.selected
        assert sharded.gains == matrix.gains
        assert sharded.score == matrix.score

    def test_deterministic_under_fixed_shard_seed(self):
        repo, instance = _instance(seed=1)
        runs = [
            greedy_select(
                repo, instance, method="sharded", shards=3, shard_seed=7
            )
            for _ in range(2)
        ]
        assert runs[0].selected == runs[1].selected
        assert runs[0].score == runs[1].score

    def test_shard_seed_changes_partition_not_validity(self):
        repo, instance = _instance(seed=1)
        a = greedy_select(
            repo, instance, method="sharded", shards=3, shard_seed=0
        )
        b = greedy_select(
            repo, instance, method="sharded", shards=3, shard_seed=99
        )
        # Different partitions may pick different users, but both results
        # must be internally consistent.
        for result in (a, b):
            assert len(result.selected) == len(set(result.selected))
            assert subset_score(instance, result.selected) == result.score

    def test_parallel_jobs_match_serial(self):
        repo, instance = _instance(seed=2)
        serial = greedy_select(
            repo, instance, method="sharded", shards=4, jobs=1
        )
        parallel = greedy_select(
            repo, instance, method="sharded", shards=4, jobs=2
        )
        assert parallel.selected == serial.selected
        assert parallel.gains == serial.gains

    def test_quality_floor_vs_exact_greedy(self):
        for seed in (0, 1, 2):
            repo, instance = _instance(seed=seed)
            exact = greedy_select(repo, instance, method="matrix")
            sharded = greedy_select(
                repo, instance, method="sharded", shards=4, shard_seed=seed
            )
            assert sharded.score >= QUALITY_FLOOR * exact.score, seed

    def test_non_vectorizable_instance_uses_exact_scheme(self):
        repo, instance = _instance(
            seed=3, n_users=60, budget=5, weight_scheme=EBSWeights()
        )
        assert not instance_index(instance).vectorizable
        sharded = greedy_select(repo, instance, method="sharded", shards=1)
        exact = greedy_select(repo, instance, method="lazy")
        assert sharded.selected == exact.selected
        assert sharded.score == exact.score

    def test_invalid_shards_rejected(self):
        repo, instance = _instance(seed=0, n_users=40, budget=4)
        with pytest.raises(PodiumError):
            greedy_select(repo, instance, method="sharded", shards=0)


class TestStochastic:
    def test_sample_ratio_one_reproduces_eager_for_any_rng(self):
        repo, instance = _instance(seed=0)
        eager = greedy_select(repo, instance, method="eager")
        for rng_seed in (0, 1, 42):
            stochastic = greedy_select(
                repo,
                instance,
                method="stochastic",
                sample_ratio=1.0,
                rng=np.random.default_rng(rng_seed),
            )
            assert stochastic.selected == eager.selected, rng_seed
            assert stochastic.gains == eager.gains, rng_seed

    def test_deterministic_under_fixed_rng(self):
        repo, instance = _instance(seed=1)
        runs = [
            greedy_select(
                repo,
                instance,
                method="stochastic",
                epsilon=0.2,
                rng=np.random.default_rng(5),
            )
            for _ in range(2)
        ]
        assert runs[0].selected == runs[1].selected

    def test_default_rng_is_reproducible(self):
        repo, instance = _instance(seed=1)
        a = greedy_select(repo, instance, method="stochastic")
        b = greedy_select(repo, instance, method="stochastic")
        assert a.selected == b.selected

    def test_quality_floor_vs_exact_greedy(self):
        # epsilon=0.02 keeps the per-step sample large enough that all
        # three pinned seeds clear the floor with margin (>0.99 here).
        for seed in (0, 1, 2):
            repo, instance = _instance(seed=seed, n_users=300)
            exact = greedy_select(repo, instance, method="matrix")
            stochastic = greedy_select(
                repo,
                instance,
                method="stochastic",
                epsilon=0.02,
                rng=np.random.default_rng(seed),
            )
            assert stochastic.score >= QUALITY_FLOOR * exact.score, seed

    def test_scores_are_exact_for_reported_subset(self):
        repo, instance = _instance(seed=2)
        result = greedy_select(
            repo, instance, method="stochastic", epsilon=0.3
        )
        assert subset_score(instance, result.selected) == result.score

    def test_invalid_parameters_rejected(self):
        repo, instance = _instance(seed=0, n_users=40, budget=4)
        with pytest.raises(PodiumError):
            greedy_select(repo, instance, method="stochastic", epsilon=0.0)
        with pytest.raises(PodiumError):
            greedy_select(
                repo, instance, method="stochastic", sample_ratio=1.5
            )

    def test_non_vectorizable_falls_back_to_exact(self):
        repo, instance = _instance(
            seed=3, n_users=60, budget=5, weight_scheme=EBSWeights()
        )
        stochastic = greedy_select(repo, instance, method="stochastic")
        exact = greedy_select(repo, instance, method="lazy")
        assert stochastic.selected == exact.selected


class TestSelectFromIndex:
    def test_matches_greedy_select_over_instance(self):
        repo, instance = _instance(seed=0)
        index = instance_index(instance)
        from_index = select_from_index(index, instance.budget)
        matrix = greedy_select(repo, instance, method="matrix")
        assert from_index.selected == matrix.selected
        assert from_index.score == matrix.score
        assert from_index.instance is None

    def test_candidate_restriction(self):
        repo, instance = _instance(seed=0)
        index = instance_index(instance)
        pool = list(index.users[:40])
        restricted = select_from_index(
            index, instance.budget, candidates=pool
        )
        via_instance = greedy_select(
            repo, instance, candidates=pool, method="matrix"
        )
        assert restricted.selected == via_instance.selected

    def test_sharded_and_stochastic_methods_available(self):
        _, instance = _instance(seed=1)
        index = instance_index(instance)
        exact = select_from_index(index, instance.budget)
        sharded = select_from_index(
            index, instance.budget, method="sharded", shards=3
        )
        stochastic = select_from_index(
            index, instance.budget, method="stochastic", epsilon=0.1
        )
        assert sharded.score >= QUALITY_FLOOR * exact.score
        assert stochastic.score >= QUALITY_FLOOR * exact.score

    def test_non_vectorizable_index_rejected(self):
        _, instance = _instance(
            seed=3, n_users=60, budget=5, weight_scheme=EBSWeights()
        )
        index = instance_index(instance)
        with pytest.raises(PodiumError):
            select_from_index(index, 5)

    def test_unknown_method_rejected(self):
        _, instance = _instance(seed=0, n_users=40, budget=4)
        index = instance_index(instance)
        with pytest.raises(PodiumError):
            select_from_index(index, 4, method="psychic")
