"""Unit tests for incremental repository updates (paper §9)."""

import pytest

from repro.core import (
    GroupingConfig,
    InvalidDeltaError,
    UnknownUserError,
    UserProfile,
    build_instance,
    build_simple_groups,
    greedy_select,
    instance_index,
)
from repro.core.groups import Group, GroupKey
from repro.core.updates import (
    IncrementalPodium,
    ProfileDelta,
    apply_delta_to_repository,
    reassign_groups,
    rebuild_instance,
)
from repro.datasets import example_grouping_config


class TestProfileDelta:
    def test_touched_union(self):
        delta = ProfileDelta(
            upserts=(UserProfile("a", {}),), removals=frozenset({"b"})
        )
        assert delta.touched == frozenset({"a", "b"})

    def test_duplicate_upsert_rejected(self):
        """A malformed delta is an InvalidDeltaError, not UnknownUserError:
        the delta is self-inconsistent regardless of any repository."""
        with pytest.raises(InvalidDeltaError, match="duplicate"):
            ProfileDelta(
                upserts=(UserProfile("a", {}), UserProfile("a", {}))
            )

    def test_upsert_and_remove_clash_rejected(self):
        with pytest.raises(InvalidDeltaError, match="both upserted"):
            ProfileDelta(
                upserts=(UserProfile("a", {}),), removals=frozenset({"a"})
            )

    def test_invalid_delta_is_not_unknown_user(self):
        """The two error classes stay distinct at the service boundary."""
        with pytest.raises(InvalidDeltaError) as excinfo:
            ProfileDelta(
                upserts=(UserProfile("a", {}),), removals=frozenset({"a"})
            )
        assert not isinstance(excinfo.value, UnknownUserError)


class TestApplyDelta:
    def test_insert_new_user(self, table2_repo):
        frank = UserProfile("Frank", {"livesIn Tokyo": 1.0})
        updated = apply_delta_to_repository(
            table2_repo, ProfileDelta(upserts=(frank,))
        )
        assert "Frank" in updated
        assert len(updated) == 6
        assert "Frank" not in table2_repo  # original untouched

    def test_replace_existing_profile(self, table2_repo):
        new_alice = UserProfile("Alice", {"livesIn Paris": 1.0})
        updated = apply_delta_to_repository(
            table2_repo, ProfileDelta(upserts=(new_alice,))
        )
        assert updated.profile("Alice").properties == frozenset(
            {"livesIn Paris"}
        )

    def test_remove_user(self, table2_repo):
        updated = apply_delta_to_repository(
            table2_repo, ProfileDelta(removals=frozenset({"Carol"}))
        )
        assert "Carol" not in updated
        assert len(updated) == 4

    def test_remove_unknown_raises(self, table2_repo):
        with pytest.raises(UnknownUserError):
            apply_delta_to_repository(
                table2_repo, ProfileDelta(removals=frozenset({"Zed"}))
            )


class TestReassignGroups:
    def test_new_user_joins_matching_buckets(self, table2_repo, table2_groups):
        frank = UserProfile(
            "Frank", {"livesIn Tokyo": 1.0, "avgRating Mexican": 0.9}
        )
        delta = ProfileDelta(upserts=(frank,))
        repo = apply_delta_to_repository(table2_repo, delta)
        groups = reassign_groups(table2_groups, repo, delta)
        assert "Frank" in groups.group(GroupKey("livesIn Tokyo", "true")).members
        assert (
            "Frank"
            in groups.group(GroupKey("avgRating Mexican", "high")).members
        )

    def test_removed_user_leaves_groups(self, table2_repo, table2_groups):
        delta = ProfileDelta(removals=frozenset({"Alice"}))
        repo = apply_delta_to_repository(table2_repo, delta)
        groups = reassign_groups(table2_groups, repo, delta)
        assert all("Alice" not in g.members for g in groups)
        # Untouched users keep their memberships.
        assert "David" in groups.group(GroupKey("livesIn Tokyo", "true")).members

    def test_profile_change_moves_between_buckets(
        self, table2_repo, table2_groups
    ):
        # Alice's Mexican rating drops from high (0.95) to low (0.1).
        new_alice = table2_repo.profile("Alice").with_score(
            "avgRating Mexican", 0.1
        )
        delta = ProfileDelta(upserts=(new_alice,))
        repo = apply_delta_to_repository(table2_repo, delta)
        groups = reassign_groups(table2_groups, repo, delta)
        assert (
            "Alice"
            not in groups.group(GroupKey("avgRating Mexican", "high")).members
        )
        assert (
            "Alice"
            in groups.group(GroupKey("avgRating Mexican", "low")).members
        )

    def test_matches_full_rebuild_on_frozen_buckets(
        self, table2_repo, table2_groups
    ):
        """Incremental reassignment equals a from-scratch rebuild with the
        same fixed splits."""
        frank = UserProfile(
            "Frank", {"visitFreq Mexican": 0.5, "livesIn NYC": 1.0}
        )
        delta = ProfileDelta(
            upserts=(frank,), removals=frozenset({"Bob"})
        )
        repo = apply_delta_to_repository(table2_repo, delta)
        incremental = reassign_groups(table2_groups, repo, delta)
        rebuilt = build_simple_groups(
            repo,
            GroupingConfig(fixed_splits=(0.4, 0.65), drop_empty=False),
        )
        # Compare on the incremental key set: the rebuild additionally
        # materializes never-populated buckets (e.g. Boolean "false"
        # buckets) that the original drop_empty grouping never had.
        for group in incremental:
            assert rebuilt.group(group.key).members == group.members


class TestRebuildInstance:
    def test_empty_groups_get_floor_weight(self, table2_repo, table2_groups):
        delta = ProfileDelta(removals=frozenset({"Bob"}))
        repo = apply_delta_to_repository(table2_repo, delta)
        groups = reassign_groups(table2_groups, repo, delta)
        instance = rebuild_instance(groups, repo, budget=2)
        nyc = GroupKey("livesIn NYC", "true")
        assert groups.group(nyc).size == 0
        assert instance.wei[nyc] == 1  # floor keeps the instance valid

    def test_weights_track_new_sizes(self, table2_repo, table2_groups):
        frank = UserProfile("Frank", {"livesIn Tokyo": 1.0})
        delta = ProfileDelta(upserts=(frank,))
        repo = apply_delta_to_repository(table2_repo, delta)
        groups = reassign_groups(table2_groups, repo, delta)
        instance = rebuild_instance(groups, repo, budget=2)
        assert instance.wei[GroupKey("livesIn Tokyo", "true")] == 3


class TestIncrementalPodium:
    def test_update_then_select(self, table2_repo, table2_groups):
        podium = IncrementalPodium(table2_repo, table2_groups, budget=2)
        base = greedy_select(podium.repository, podium.instance)
        assert set(base.selected) == {"Alice", "Eve"}

        # A new super-user carrying many large groups displaces Eve.
        gina = UserProfile(
            "Gina",
            {
                "livesIn Paris": 1.0,
                "avgRating Mexican": 0.8,
                "visitFreq Mexican": 0.5,
                "avgRating CheapEats": 0.5,
                "visitFreq CheapEats": 0.25,
                "ageGroup 50-64": 1.0,
            },
        )
        podium.update(ProfileDelta(upserts=(gina,)))
        updated = greedy_select(podium.repository, podium.instance)
        assert "Gina" in updated.selected
        assert len(podium.repository) == 6

    def test_update_then_matrix_selection_matches_eager(
        self, table2_repo, table2_groups
    ):
        """The matrix backend after ``update`` must see the new instance,
        not a stale cached index warmed before the update."""
        podium = IncrementalPodium(table2_repo, table2_groups, budget=2)
        greedy_select(podium.repository, podium.instance, method="matrix")
        gina = UserProfile(
            "Gina",
            {
                "livesIn Paris": 1.0,
                "avgRating Mexican": 0.8,
                "visitFreq Mexican": 0.5,
                "avgRating CheapEats": 0.5,
                "visitFreq CheapEats": 0.25,
                "ageGroup 50-64": 1.0,
            },
        )
        podium.update(ProfileDelta(upserts=(gina,)))
        eager = greedy_select(podium.repository, podium.instance, method="eager")
        matrix = greedy_select(
            podium.repository, podium.instance, method="matrix"
        )
        assert matrix.selected == eager.selected
        assert matrix.score == eager.score
        assert "Gina" in matrix.selected

    def test_rebucket_refreshes_boundaries(self, table2_repo, table2_groups):
        podium = IncrementalPodium(table2_repo, table2_groups, budget=2)
        podium.rebucket(GroupingConfig(fixed_splits=(0.4, 0.65)))
        assert len(podium.groups) == 16
        result = greedy_select(podium.repository, podium.instance)
        assert result.score == 17


class TestRebucketPolicy:
    """Deterministic rebucket trigger: touched-users fraction."""

    def _podium(self, table2_repo, table2_groups, threshold=0.25):
        return IncrementalPodium(
            table2_repo,
            table2_groups,
            budget=2,
            rebucket_threshold=threshold,
            grouping=example_grouping_config(),
        )

    def _user(self, name):
        return UserProfile(name, {"livesIn Paris": 1.0})

    def test_threshold_crossing_triggers_rebucket(
        self, table2_repo, table2_groups
    ):
        podium = self._podium(table2_repo, table2_groups)
        # After the first upsert: 1 touched < 0.25 * 6 users = 1.5.
        podium.update(ProfileDelta(upserts=(self._user("Gina"),)))
        assert podium.rebucket_count == 0
        assert podium.touched_since_rebucket == 1
        # After the second: 2 touched >= 0.25 * 7 = 1.75 — trigger + reset.
        podium.update(ProfileDelta(upserts=(self._user("Hank"),)))
        assert podium.rebucket_count == 1
        assert podium.touched_since_rebucket == 0

    def test_triggered_rebucket_equals_full_grouping_run(
        self, table2_repo, table2_groups
    ):
        podium = self._podium(table2_repo, table2_groups)
        podium.update(ProfileDelta(upserts=(self._user("Gina"),)))
        podium.update(ProfileDelta(upserts=(self._user("Hank"),)))
        assert podium.rebucket_count == 1
        rebuilt = build_simple_groups(
            podium.repository, example_grouping_config()
        )
        assert {g.key for g in podium.groups} == {g.key for g in rebuilt}
        for group in podium.groups:
            assert rebuilt.group(group.key).members == group.members

    def test_policy_is_replay_deterministic(
        self, table2_repo, table2_groups
    ):
        """Same delta sequence → rebuilds at the same points."""
        deltas = [
            ProfileDelta(upserts=(self._user(f"u{i}"),)) for i in range(5)
        ]

        def run():
            podium = self._podium(table2_repo, table2_groups)
            counts = []
            for delta in deltas:
                podium.update(delta)
                counts.append(podium.rebucket_count)
            return counts

        assert run() == run()

    def test_disabled_by_default(self, table2_repo, table2_groups):
        podium = IncrementalPodium(table2_repo, table2_groups, budget=2)
        for i in range(10):
            podium.update(ProfileDelta(upserts=(self._user(f"u{i}"),)))
        assert podium.rebucket_count == 0

    def test_invalid_threshold_rejected(self, table2_repo, table2_groups):
        with pytest.raises(InvalidDeltaError, match="positive"):
            IncrementalPodium(
                table2_repo,
                table2_groups,
                budget=2,
                rebucket_threshold=0.0,
            )


class TestIndexCacheInvalidation:
    """The cached sparse index must drop when the group set mutates.

    Regression: the index was cached on the instance without a version
    check, so a matrix selection warmed before an in-place ``GroupSet``
    mutation silently replayed the pre-mutation incidence.
    """

    def test_in_place_group_mutation_invalidates_cache(self, table2_repo):
        # Private group set: the shared fixture is session-scoped and must
        # not be mutated.
        groups = build_simple_groups(table2_repo, example_grouping_config())
        instance = build_instance(table2_repo, 2, groups=groups)
        greedy_select(table2_repo, instance, method="matrix")  # warm cache
        stale = instance_index(instance)

        # Re-adding under the same key replaces the group in place: the
        # instance object is untouched but its incidence changed.
        mexican = groups.group(GroupKey("avgRating Mexican", "high"))
        assert "Eve" in mexican.members
        groups.add(
            Group(
                mexican.key,
                mexican.members - {"Eve"},
                mexican.bucket,
                mexican.label,
            )
        )

        fresh = instance_index(instance)
        assert fresh is not stale
        eager = greedy_select(table2_repo, instance, method="eager")
        matrix = greedy_select(table2_repo, instance, method="matrix")
        assert matrix.selected == eager.selected
        assert matrix.score == eager.score

    def test_unmutated_group_set_keeps_cached_index(
        self, table2_repo, table2_groups
    ):
        instance = build_instance(table2_repo, 2, groups=table2_groups)
        assert instance_index(instance) is instance_index(instance)
