"""Property-based tests (hypothesis) for core invariants.

Covers the mathematical facts the paper's guarantees rest on:
submodularity / monotonicity / non-negativity of the score (Prop. 4.4),
the greedy (1 − 1/e) bound, bucket partitions covering [0, 1] exactly
once, CD-sim's range and over-representation blindness, and the
incremental coverage state agreeing with batch scoring.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CoverageState,
    GroupingConfig,
    build_instance,
    build_simple_groups,
    greedy_select,
    optimal_select,
    subset_score,
)
from repro.core.buckets import partition_from_splits, split_scores
from repro.core.profiles import UserProfile, UserRepository
from repro.core.weights import (
    IdenWeights,
    LBSWeights,
    PropCoverage,
    SingleCoverage,
)
from repro.metrics.cdsim import cd_sim, cd_sim_from_counts

# -- strategies -------------------------------------------------------------

scores_st = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def repositories(draw, max_users: int = 12, max_properties: int = 8):
    """Small random repositories with possibly-sparse profiles."""
    n_users = draw(st.integers(2, max_users))
    n_props = draw(st.integers(1, max_properties))
    labels = [f"p{i}" for i in range(n_props)]
    profiles = []
    for u in range(n_users):
        size = draw(st.integers(0, n_props))
        chosen = draw(
            st.permutations(labels).map(lambda perm: perm[:size])
        )
        profile_scores = {
            label: draw(scores_st) for label in chosen
        }
        profiles.append(UserProfile(f"u{u}", profile_scores))
    return UserRepository(profiles)


@st.composite
def instances(draw):
    repo = draw(repositories())
    weight = draw(st.sampled_from([IdenWeights(), LBSWeights()]))
    coverage = draw(st.sampled_from([SingleCoverage(), PropCoverage()]))
    budget = draw(st.integers(1, 4))
    groups = build_simple_groups(
        repo, GroupingConfig(strategy="quantile")
    )
    return repo, build_instance(
        repo, budget, groups=groups, weight_scheme=weight,
        coverage_scheme=coverage,
    )


# -- score function properties (Prop. 4.4) ----------------------------------


@settings(max_examples=40, deadline=None)
@given(instances(), st.randoms(use_true_random=False))
def test_score_monotone(repo_instance, pyrandom):
    repo, instance = repo_instance
    users = repo.user_ids
    subset = pyrandom.sample(users, k=pyrandom.randint(0, len(users)))
    extra = pyrandom.choice(users)
    assert subset_score(instance, subset + [extra]) >= subset_score(
        instance, subset
    )


@settings(max_examples=40, deadline=None)
@given(instances(), st.randoms(use_true_random=False))
def test_score_submodular(repo_instance, pyrandom):
    """Gain of u on U is at least its gain on any superset U'."""
    repo, instance = repo_instance
    users = repo.user_ids
    small = pyrandom.sample(users, k=pyrandom.randint(0, len(users) - 1))
    grow = [u for u in users if u not in small]
    big = small + pyrandom.sample(grow, k=pyrandom.randint(0, len(grow)))
    candidates = [u for u in users if u not in big]
    if not candidates:
        return
    u = pyrandom.choice(candidates)
    gain_small = subset_score(instance, small + [u]) - subset_score(
        instance, small
    )
    gain_big = subset_score(instance, big + [u]) - subset_score(instance, big)
    assert gain_small >= gain_big


@settings(max_examples=40, deadline=None)
@given(instances(), st.randoms(use_true_random=False))
def test_score_non_negative(repo_instance, pyrandom):
    repo, instance = repo_instance
    subset = pyrandom.sample(
        repo.user_ids, k=pyrandom.randint(0, len(repo.user_ids))
    )
    assert subset_score(instance, subset) >= 0


# -- greedy guarantees -------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(instances())
def test_greedy_within_bound_of_optimal(repo_instance):
    repo, instance = repo_instance
    greedy = greedy_select(repo, instance)
    best = optimal_select(repo, instance)
    assert greedy.score >= (1 - 1 / np.e) * best.score - 1e-9


@settings(max_examples=25, deadline=None)
@given(instances())
def test_greedy_eager_lazy_identical_selections(repo_instance):
    """With deterministic (min user-id) tie-breaking the two greedy
    implementations must pick the exact same sequence — hypothesis once
    caught the lazy heap resolving ties by stale priority order instead."""
    repo, instance = repo_instance
    eager = greedy_select(repo, instance, method="eager")
    lazy = greedy_select(repo, instance, method="lazy")
    assert eager.selected == lazy.selected
    assert eager.score == lazy.score
    assert eager.gains == lazy.gains


@settings(max_examples=25, deadline=None)
@given(instances())
def test_greedy_respects_budget_and_reports_score(repo_instance):
    repo, instance = repo_instance
    result = greedy_select(repo, instance)
    assert len(result.selected) <= instance.budget
    assert len(set(result.selected)) == len(result.selected)
    assert result.score == subset_score(instance, result.selected)


# -- coverage state ----------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(instances(), st.randoms(use_true_random=False))
def test_coverage_state_matches_batch(repo_instance, pyrandom):
    repo, instance = repo_instance
    order = repo.user_ids
    pyrandom.shuffle(order)
    state = CoverageState(instance)
    added: list[str] = []
    for user in order[:5]:
        predicted = state.marginal_gain(user)
        realized = state.add(user)
        added.append(user)
        assert predicted == realized
        assert state.score == subset_score(instance, added)


# -- bucket partitions ---------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    st.lists(scores_st, min_size=1, max_size=60),
    st.integers(1, 5),
    st.sampled_from(["quantile", "equal-width", "kmeans", "jenks"]),
)
def test_bucket_partition_total_and_disjoint(score_list, k, strategy):
    buckets = split_scores(np.array(score_list), k=k, strategy=strategy)
    for score in score_list + [0.0, 1.0]:
        assert sum(b.contains(float(score)) for b in buckets) == 1


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.floats(min_value=0.01, max_value=0.99), min_size=0, max_size=5
    )
)
def test_partition_from_any_strictly_sorted_splits(points):
    unique = sorted(set(round(p, 6) for p in points))
    buckets = partition_from_splits(tuple(unique))
    assert len(buckets) == len(unique) + 1
    assert buckets[0].lo == 0.0 and buckets[-1].hi == 1.0


# -- CD-sim -------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.floats(0, 1), min_size=1, max_size=10),
    st.lists(st.floats(0, 1), min_size=1, max_size=10),
)
def test_cd_sim_bounded(sub, all_):
    k = min(len(sub), len(all_))
    value = cd_sim(sub[:k], all_[:k])
    assert 0.0 - 1e-9 <= value <= 1.0 + 1e-9


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(0.01, 1), min_size=1, max_size=10))
def test_cd_sim_identity_is_one(dist):
    assert cd_sim(dist, dist) == 1.0


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(0, 50), min_size=2, max_size=8),
    st.integers(0, 7),
    st.integers(1, 50),
)
def test_cd_sim_ignores_pure_over_representation(counts, index, boost):
    """Adding mass to an already >=-represented bucket never lowers CD-sim
    of that bucket's own term — over-representation is not taxed."""
    if sum(counts) == 0:
        counts = [c + 1 for c in counts]
    index = index % len(counts)
    base = cd_sim_from_counts(counts, counts)
    boosted = list(counts)
    boosted[index] += boost
    # Identical distributions score 1; boosting one bucket only taxes the
    # *other* buckets (now relatively under-represented), never exceeds 1.
    assert base == 1.0
    assert cd_sim_from_counts(boosted, counts) <= 1.0
