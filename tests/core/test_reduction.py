"""Unit tests for the executable Prop. 4.1 Set Cover reduction."""

import pytest

from repro.core import (
    InvalidInstanceError,
    SetCoverInstance,
    decide_set_cover,
    greedy_set_cover,
    reduce_set_cover,
)


@pytest.fixture()
def coverable():
    """{1..5} coverable by S0={1,2,3} and S2={4,5} with k=2."""
    return SetCoverInstance.of(
        range(1, 6), [{1, 2, 3}, {2, 4}, {4, 5}, {3}], k=2
    )


@pytest.fixture()
def uncoverable():
    """{1..5} not coverable by any two of these subsets."""
    return SetCoverInstance.of(
        range(1, 6), [{1, 2}, {2, 3}, {4}, {5}], k=2
    )


class TestInstanceValidation:
    def test_stray_elements_rejected(self):
        with pytest.raises(InvalidInstanceError):
            SetCoverInstance.of({1, 2}, [{1, 3}], k=1)

    def test_bad_k_rejected(self):
        with pytest.raises(InvalidInstanceError):
            SetCoverInstance.of({1}, [{1}], k=0)

    def test_is_cover(self, coverable):
        assert coverable.is_cover([0, 2])
        assert not coverable.is_cover([0, 1])
        assert not coverable.is_cover([])


class TestReduction:
    def test_construction_shape(self, coverable):
        reduced = reduce_set_cover(coverable)
        assert len(reduced.repository) == 4  # one user per subset
        assert len(reduced.instance.groups) == 5  # one group per element
        assert reduced.threshold == 5  # wei=1, cov=1, five elements

    def test_membership_matches_subsets(self, coverable):
        reduced = reduce_set_cover(coverable)
        groups = reduced.instance.groups
        for j, subset in enumerate(coverable.subsets):
            user = reduced.user_for_subset(j)
            member_of = {
                int(key.property_label.split()[1])
                for key in groups.groups_of(user)
            }
            assert member_of == set(subset)

    def test_score_reaches_threshold_iff_cover(self, coverable):
        from repro.core import subset_score

        reduced = reduce_set_cover(coverable)
        cover_score = subset_score(reduced.instance, ["s0", "s2"])
        non_cover_score = subset_score(reduced.instance, ["s0", "s1"])
        assert cover_score == reduced.threshold
        assert non_cover_score < reduced.threshold


class TestDecide:
    def test_positive_instance(self, coverable):
        decision, witness = decide_set_cover(coverable)
        assert decision
        assert coverable.is_cover(witness)
        assert len(witness) <= coverable.k

    def test_negative_instance(self, uncoverable):
        decision, witness = decide_set_cover(uncoverable)
        assert not decision
        assert not uncoverable.is_cover(witness)

    def test_k_equal_subsets(self):
        sc = SetCoverInstance.of({1, 2}, [{1}, {2}], k=2)
        decision, witness = decide_set_cover(sc)
        assert decision
        assert sorted(witness) == [0, 1]


class TestGreedySetCover:
    def test_finds_a_cover_when_one_exists(self, coverable):
        chosen = greedy_set_cover(coverable)
        assert coverable.is_cover(chosen)

    def test_greedy_picks_largest_first(self):
        sc = SetCoverInstance.of(
            range(6), [{0, 1, 2, 3}, {0, 1}, {4}, {5}, {4, 5}], k=3
        )
        chosen = greedy_set_cover(sc)
        assert chosen[0] == 0  # the 4-element subset dominates
        assert sc.is_cover(chosen)
        assert len(chosen) == 2  # {0,1,2,3} + {4,5}

    def test_greedy_logarithmic_not_exceeded_on_small(self):
        """On tiny instances greedy stays within ln|N|+1 of optimal."""
        import math

        sc = SetCoverInstance.of(
            range(8),
            [{0, 1, 2, 3}, {4, 5, 6, 7}, {0, 4}, {1, 5}, {2, 6}, {3, 7}],
            k=6,
        )
        chosen = greedy_set_cover(sc)
        assert sc.is_cover(chosen)
        optimal_size = 2  # the two 4-element halves
        assert len(chosen) <= (math.log(8) + 1) * optimal_size
