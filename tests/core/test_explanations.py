"""Unit tests for explanations (paper §5, Def. 5.1, Example 5.2)."""

import pytest

from repro.core import (
    build_instance,
    explain_selection,
    greedy_select,
)
from repro.core.explanations import (
    compare_distributions,
    explain_group,
    explain_subset_group,
    explain_user,
)
from repro.core.groups import GroupKey


@pytest.fixture()
def alice_eve(table2_repo, table2_instance):
    return greedy_select(table2_repo, table2_instance)


class TestGroupExplanation:
    def test_example_5_2_mexican_group(self, table2_instance):
        """⟨"high ... Mexican", 3, 1⟩: weight reflects size 3, Single cov."""
        exp = explain_group(
            table2_instance, GroupKey("avgRating Mexican", "high")
        )
        assert exp.weight == 3
        assert exp.coverage == 1
        assert "avgRating Mexican" in exp.label
        assert exp.as_tuple() == (exp.label, 3, 1)

    def test_example_5_2_tokyo_group(self, table2_instance):
        """⟨"lives in Tokyo", 2, 1⟩ — Boolean label without bucket text."""
        exp = explain_group(table2_instance, GroupKey("livesIn Tokyo", "true"))
        assert exp.weight == 2
        assert exp.coverage == 1
        assert exp.label == "livesIn Tokyo"


class TestUserExplanation:
    def test_alice_groups(self, table2_instance):
        exp = explain_user(table2_instance, "Alice")
        labels = {g.label for g in exp.groups}
        assert "livesIn Tokyo" in labels
        assert "high scores for avgRating Mexican" in labels
        assert len(exp.groups) == 6

    def test_top_orders_by_weight(self, table2_instance):
        exp = explain_user(table2_instance, "Alice")
        top2 = exp.top(2)
        assert top2[0].weight >= top2[1].weight
        assert top2[0].label == "high scores for avgRating Mexican"


class TestSubsetGroupExplanation:
    def test_example_5_2_pair(self, table2_instance):
        """{Alice, Eve} vs avgRating Mexican high: ⟨1, 2⟩ — both belong,
        exceeding required coverage."""
        exp = explain_subset_group(
            table2_instance,
            ["Alice", "Eve"],
            GroupKey("avgRating Mexican", "high"),
        )
        assert exp.as_tuple() == (1, 2)
        assert exp.covered

    def test_uncovered_group(self, table2_instance):
        exp = explain_subset_group(
            table2_instance, ["Alice", "Eve"], GroupKey("livesIn NYC", "true")
        )
        assert exp.actual == 0
        assert not exp.covered


class TestCompareDistributions:
    def test_population_shares(self, table2_instance):
        dist = compare_distributions(
            table2_instance, ["Alice", "Eve"], "avgRating Mexican"
        )
        # Groups: high (3 users), low (1 user) -> shares 0.25 / 0.75
        # ordered low first (lower bucket bound).
        assert dist.bucket_labels == ("low", "high")
        assert dist.population == pytest.approx((0.25, 0.75))
        assert dist.subset == pytest.approx((0.0, 1.0))

    def test_empty_subset_counts(self, table2_instance):
        dist = compare_distributions(
            table2_instance, [], "avgRating Mexican"
        )
        assert dist.subset == pytest.approx((0.0, 0.0))


class TestExplainSelection:
    def test_payload_shapes(self, alice_eve):
        explanation = explain_selection(
            alice_eve, distribution_properties=("avgRating Mexican",)
        )
        assert len(explanation.user_explanations) == 2
        assert len(explanation.subset_group_explanations) == 16
        assert len(explanation.distributions) == 1
        assert 0.0 <= explanation.top_coverage_fraction <= 1.0

    def test_group_list_sorted_by_weight(self, alice_eve):
        explanation = explain_selection(alice_eve)
        weights = [g.weight for g in explanation.group_explanations]
        assert weights == sorted(weights, reverse=True)

    def test_top_coverage_fraction_counts_covered(self, alice_eve):
        # Top 3 by weight: Mexican-high (Alice), ageGroup 50-64 (Alice),
        # avgRating CheapEats medium (Eve) — all covered.
        explanation = explain_selection(alice_eve, top_k=3)
        assert explanation.top_coverage_fraction == pytest.approx(1.0)
        # The full group list (16 groups) is not fully covered though.
        full = explain_selection(alice_eve, top_k=16)
        assert full.top_coverage_fraction == pytest.approx(10 / 16)

    def test_for_user_lookup(self, alice_eve):
        explanation = explain_selection(alice_eve)
        assert explanation.for_user("Alice").user_id == "Alice"
        with pytest.raises(KeyError):
            explanation.for_user("Carol")

    def test_covered_uncovered_partition(self, alice_eve):
        explanation = explain_selection(alice_eve)
        covered = explanation.covered()
        uncovered = explanation.uncovered()
        assert len(covered) + len(uncovered) == 16
        assert all(e.covered for e in covered)
        assert not any(e.covered for e in uncovered)
        # Alice+Eve together belong to 10 distinct groups.
        assert len(covered) == 10
