"""Property-based tests (hypothesis) for customization invariants (§6).

Random instances, random feedback — the invariants under test:

* every selected user satisfies the must-have/must-not filters;
* the lexicographic rescaling never lets any standard-score combination
  outrank a strictly better priority score;
* CUSTOM-DIVERSITY with empty feedback coincides with BASE-DIVERSITY.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CustomizationFeedback,
    GroupingConfig,
    InfeasibleSelectionError,
    build_instance,
    build_simple_groups,
    custom_select,
    customized_instance,
    greedy_select,
    refine_users,
    subset_score,
)
from repro.datasets.synth import generate_profile_repository


@st.composite
def instances_with_feedback(draw):
    seed = draw(st.integers(0, 50))
    repo = generate_profile_repository(
        n_users=25, n_properties=12, mean_profile_size=5.0, seed=seed
    )
    groups = build_simple_groups(repo, GroupingConfig(strategy="quantile"))
    budget = draw(st.integers(1, 4))
    instance = build_instance(repo, budget, groups=groups)

    keys = sorted(instance.groups.keys, key=str)
    picked = draw(
        st.lists(st.sampled_from(keys), max_size=4, unique=True)
    )
    role = draw(st.sampled_from(["must_have", "must_not", "priority"]))
    feedback = CustomizationFeedback(
        must_have=frozenset(picked) if role == "must_have" else frozenset(),
        must_not=frozenset(picked) if role == "must_not" else frozenset(),
        priority=frozenset(picked) if role == "priority" else frozenset(),
    )
    return repo, instance, feedback


@settings(max_examples=40, deadline=None)
@given(instances_with_feedback())
def test_selected_users_satisfy_filters(setup):
    repo, instance, feedback = setup
    try:
        custom = custom_select(repo, instance, feedback)
    except InfeasibleSelectionError:
        # Legal outcome: the filters removed everyone.
        assert refine_users(repo, instance.groups, feedback) == []
        return
    eligible = set(refine_users(repo, instance.groups, feedback))
    assert set(custom.selected) <= eligible
    groups = instance.groups
    must_have_props = {k.property_label for k in feedback.must_have}
    for user in custom.selected:
        memberships = groups.groups_of(user)
        assert not (memberships & feedback.must_not)
        for prop in must_have_props:
            prop_keys = {
                k for k in feedback.must_have if k.property_label == prop
            }
            assert memberships & prop_keys


@settings(max_examples=40, deadline=None)
@given(instances_with_feedback())
def test_lexicographic_dominance_of_priority_score(setup):
    """For ANY two subsets, a strictly higher priority score implies a
    strictly higher rescaled score, regardless of standard scores."""
    repo, instance, feedback = setup
    if not feedback.priority:
        return
    rescaled = customized_instance(instance, feedback)
    priority_only = instance.restricted_to_groups(feedback.priority)

    users = repo.user_ids
    a, b = users[: instance.budget], users[-instance.budget:]
    pa = subset_score(priority_only, a)
    pb = subset_score(priority_only, b)
    sa = subset_score(rescaled, a)
    sb = subset_score(rescaled, b)
    if pa > pb:
        assert sa > sb
    elif pb > pa:
        assert sb > sa


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 30), st.integers(1, 4))
def test_empty_feedback_equals_base(seed, budget):
    repo = generate_profile_repository(
        n_users=20, n_properties=10, mean_profile_size=4.0, seed=seed
    )
    groups = build_simple_groups(repo, GroupingConfig(strategy="quantile"))
    instance = build_instance(repo, budget, groups=groups)
    base = greedy_select(repo, instance)
    custom = custom_select(
        repo, instance, CustomizationFeedback.none()
    )
    assert subset_score(instance, custom.selected) == base.score
