"""Index-native stage parity: explanations/customization vs dict oracles.

The columnar-source-of-truth promise: every index-native stage — matrix
selection, ``explain_selection(method="index")``, matrix
``custom_select`` and index ``feedback_group_coverage`` — produces
payloads equal (``==``) to its dict-walking oracle, across Iden/LBS ×
Single/Prop, both on in-RAM indexes and on ``open_index_npz``-mapped
checkpoints.  On the mapped checkpoint a counting ``LazyUserIds``
wrapper additionally proves the user-id array is never materialized:
only the handful of selected winners are ever decoded.
"""

import numpy as np
import pytest

from repro.core import (
    GroupingConfig,
    build_instance,
    build_simple_groups,
    greedy_select,
    instance_index,
)
from repro.core.customization import (
    CustomizationFeedback,
    custom_select,
    feedback_group_coverage,
)
from repro.core.explanations import _EXPLAIN_CACHE_ATTR, explain_selection
from repro.core.index import attach_index
from repro.core.persistence import (
    LazyUserIds,
    open_index_npz,
    save_index_npz,
)
from repro.core.weights import (
    IdenWeights,
    LBSWeights,
    PropCoverage,
    SingleCoverage,
)
from repro.datasets.synth import generate_profile_repository

WEIGHTS = (IdenWeights, LBSWeights)
COVERAGES = (SingleCoverage, PropCoverage)
BUDGET = 6


class CountingLazyUserIds(LazyUserIds):
    """LazyUserIds that counts every id decode (per element)."""

    __slots__ = ("decoded",)

    def __init__(self, ids: np.ndarray) -> None:
        super().__init__(ids)
        self.decoded = 0

    def __getitem__(self, item):
        if isinstance(item, slice):
            self.decoded += len(self._ids[item])
        else:
            self.decoded += 1
        return super().__getitem__(item)

    def __iter__(self):
        for u in self._ids:
            self.decoded += 1
            yield str(u)


def _case(weight_cls, coverage_cls, seed=0, n_users=120):
    repo = generate_profile_repository(
        n_users=n_users, n_properties=40, mean_profile_size=12.0, seed=seed
    )
    groups = build_simple_groups(repo, GroupingConfig(min_support=2))

    def make_instance():
        return build_instance(
            repo,
            budget=BUDGET,
            groups=groups,
            weight_scheme=weight_cls(),
            coverage_scheme=coverage_cls(),
        )

    return repo, groups, make_instance


def _feedback(groups):
    keys = sorted(groups.keys, key=str)
    return CustomizationFeedback(
        must_not=frozenset(keys[:1]), priority=frozenset(keys[1:4])
    )


def _assert_custom_parity(fast, slow):
    assert fast.selected == slow.selected
    assert fast.result.score == slow.result.score
    assert fast.priority_score == slow.priority_score
    assert fast.standard_score == slow.standard_score
    assert fast.refined_pool_size == slow.refined_pool_size


@pytest.mark.parametrize("weight_cls", WEIGHTS)
@pytest.mark.parametrize("coverage_cls", COVERAGES)
class TestInRamParity:
    def test_explanation_payloads_identical(self, weight_cls, coverage_cls):
        repo, _, make_instance = _case(weight_cls, coverage_cls)
        instance = make_instance()
        result = greedy_select(repo, instance, method="matrix")
        props = tuple(sorted(repo.property_labels)[:2])
        assert explain_selection(
            result, top_k=25, distribution_properties=props
        ) == explain_selection(
            result, top_k=25, distribution_properties=props, method="python"
        )

    def test_customization_identical(self, weight_cls, coverage_cls):
        repo, groups, make_instance = _case(weight_cls, coverage_cls)
        instance = make_instance()
        feedback = _feedback(groups)
        fast = custom_select(repo, instance, feedback, method="matrix")
        slow = custom_select(repo, instance, feedback, method="eager")
        _assert_custom_parity(fast, slow)

    def test_feedback_coverage_identical(self, weight_cls, coverage_cls):
        repo, groups, make_instance = _case(weight_cls, coverage_cls)
        instance = make_instance()
        feedback = _feedback(groups)
        selected = greedy_select(repo, instance, method="matrix").selected
        assert feedback_group_coverage(
            instance, feedback, selected, method="index"
        ) == feedback_group_coverage(
            instance, feedback, selected, method="python"
        )


@pytest.mark.parametrize("weight_cls", WEIGHTS)
@pytest.mark.parametrize("coverage_cls", COVERAGES)
class TestMappedCheckpointParity:
    """The full sweep again, on an ``open_index_npz``-mapped checkpoint."""

    def _mapped_instance(self, make_instance, tmp_path):
        source = make_instance()
        path = tmp_path / "index.npz"
        save_index_npz(instance_index(source), path)
        mapped = open_index_npz(path)
        counting = CountingLazyUserIds(mapped.users._ids)
        object.__setattr__(mapped, "users", counting)
        instance = make_instance()
        attach_index(instance, mapped)
        return instance, counting

    def test_selection_explanation_and_customization(
        self, weight_cls, coverage_cls, tmp_path
    ):
        repo, groups, make_instance = _case(weight_cls, coverage_cls)
        mapped_instance, counting = self._mapped_instance(
            make_instance, tmp_path
        )
        oracle_instance = make_instance()

        oracle = greedy_select(repo, oracle_instance, method="eager")
        result = greedy_select(repo, mapped_instance, method="matrix")
        assert result.selected == oracle.selected
        assert result.score == oracle.score

        assert explain_selection(result, top_k=25) == explain_selection(
            oracle, top_k=25, method="python"
        )

        feedback = _feedback(groups)
        fast = custom_select(
            repo, mapped_instance, feedback, method="matrix"
        )
        slow = custom_select(
            repo, oracle_instance, feedback, method="eager"
        )
        _assert_custom_parity(fast, slow)

        assert feedback_group_coverage(
            mapped_instance, feedback, result.selected, method="index"
        ) == feedback_group_coverage(
            oracle_instance, feedback, result.selected, method="python"
        )

        # The whole pipeline decoded only the selected winners — never
        # the full id array (full materialization would be >= |U| per
        # pass, 120 here).
        assert counting.decoded < len(repo.user_ids) // 2


class TestSelectionHits:
    def test_matches_mask_path(self):
        repo, _, make_instance = _case(LBSWeights, SingleCoverage)
        instance = make_instance()
        idx = instance_index(instance)
        selected = list(idx.users[:7])
        np.testing.assert_array_equal(
            idx.selection_hits(selected),
            idx.group_hits(idx.selection_mask(selected)),
        )

    def test_duplicates_and_unknown_users_ignored(self):
        repo, _, make_instance = _case(IdenWeights, PropCoverage)
        instance = make_instance()
        idx = instance_index(instance)
        selected = [idx.users[0], idx.users[3]]
        noisy = selected + [idx.users[0], "no-such-user"]
        np.testing.assert_array_equal(
            idx.selection_hits(noisy), idx.selection_hits(selected)
        )

    def test_empty_selection_is_zero(self):
        repo, _, make_instance = _case(LBSWeights, SingleCoverage)
        idx = instance_index(make_instance())
        hits = idx.selection_hits([])
        assert hits.shape == (idx.n_groups,)
        assert not hits.any()


class TestExplanationCache:
    def test_reuses_memoized_group_explanations(self):
        repo, _, make_instance = _case(LBSWeights, SingleCoverage)
        instance = make_instance()
        result = greedy_select(repo, instance, method="matrix")
        first = explain_selection(result)
        assert getattr(instance, _EXPLAIN_CACHE_ATTR, None) is not None
        second = explain_selection(result)
        assert first == second
        # Same payload and the *same* frozen objects: the per-instance
        # cache was hit, not rebuilt.
        assert (
            first.group_explanations[0] is second.group_explanations[0]
        )

    def test_stale_cache_dropped_when_index_replaced(self):
        repo, _, make_instance = _case(LBSWeights, SingleCoverage)
        instance = make_instance()
        result = greedy_select(repo, instance, method="matrix")
        first = explain_selection(result)
        # Attaching a fresh (equal) index invalidates the cached sort
        # orders: the guard is identity on the index object, so the
        # payload is rebuilt — equal content, distinct objects.
        attach_index(instance, instance_index(make_instance()))
        rebuilt = explain_selection(result)
        assert rebuilt == first
        assert (
            rebuilt.group_explanations[0]
            is not first.group_explanations[0]
        )
