"""Unit tests for the noisy-weights randomization extension (paper §10)."""

import numpy as np
import pytest

from repro.core import (
    InvalidInstanceError,
    greedy_select,
    noisy_instance,
    randomized_select,
    selection_pool,
    subset_score,
)


class TestNoisyInstance:
    def test_zero_sigma_preserves_weights(self, table2_instance):
        perturbed = noisy_instance(
            table2_instance, 0.0, np.random.default_rng(0)
        )
        for key in table2_instance.groups.keys:
            assert perturbed.wei[key] == pytest.approx(
                float(table2_instance.wei[key])
            )

    def test_weights_stay_positive(self, table2_instance):
        perturbed = noisy_instance(
            table2_instance, 2.0, np.random.default_rng(1)
        )
        assert all(w > 0 for w in perturbed.wei.values())

    def test_coverage_and_groups_untouched(self, table2_instance):
        perturbed = noisy_instance(
            table2_instance, 0.5, np.random.default_rng(2)
        )
        assert perturbed.cov == table2_instance.cov
        assert perturbed.groups is table2_instance.groups

    def test_negative_sigma_rejected(self, table2_instance):
        with pytest.raises(InvalidInstanceError):
            noisy_instance(table2_instance, -0.1, np.random.default_rng(0))

    def test_deterministic_per_rng_state(self, table2_instance):
        a = noisy_instance(table2_instance, 0.4, np.random.default_rng(7))
        b = noisy_instance(table2_instance, 0.4, np.random.default_rng(7))
        assert a.wei == b.wei


class TestRandomizedSelect:
    def test_respects_budget(self, table2_repo, table2_instance):
        result = randomized_select(table2_repo, table2_instance, seed=1)
        assert len(result.selected) == table2_instance.budget

    def test_seed_reproducible(self, table2_repo, table2_instance):
        a = randomized_select(table2_repo, table2_instance, seed=3)
        b = randomized_select(table2_repo, table2_instance, seed=3)
        assert a.selected == b.selected

    def test_seeds_vary_output(self, small_profile_repo, small_instance):
        subsets = {
            randomized_select(
                small_profile_repo, small_instance, sigma=0.6, seed=s
            ).selected
            for s in range(10)
        }
        assert len(subsets) >= 2

    def test_quality_retained_on_original_objective(
        self, small_profile_repo, small_instance
    ):
        baseline = greedy_select(small_profile_repo, small_instance)
        retained = []
        for seed in range(5):
            picked = randomized_select(
                small_profile_repo, small_instance, sigma=0.3, seed=seed
            ).selected
            retained.append(
                subset_score(small_instance, picked) / baseline.score
            )
        assert float(np.mean(retained)) >= 0.8


class TestSelectionPool:
    def test_counts_sum_to_selections(self, table2_repo, table2_instance):
        pool = selection_pool(
            table2_repo, table2_instance, seeds=range(6)
        )
        assert sum(pool.values()) == 6 * table2_instance.budget

    def test_sorted_by_frequency(self, small_profile_repo, small_instance):
        pool = selection_pool(
            small_profile_repo, small_instance, sigma=0.5, seeds=range(8)
        )
        counts = list(pool.values())
        assert counts == sorted(counts, reverse=True)

    def test_pool_grows_with_noise(self, small_profile_repo, small_instance):
        quiet = selection_pool(
            small_profile_repo, small_instance, sigma=0.0, seeds=range(8)
        )
        loud = selection_pool(
            small_profile_repo, small_instance, sigma=1.0, seeds=range(8)
        )
        assert len(loud) >= len(quiet)
