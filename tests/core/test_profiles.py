"""Unit tests for user profiles and repositories (paper §3.1)."""

import numpy as np
import pytest

from repro.core import (
    DuplicateUserError,
    EmptyRepositoryError,
    InvalidScoreError,
    UnknownPropertyError,
    UnknownUserError,
    UserProfile,
    UserRepository,
)


class TestUserProfile:
    def test_scores_are_frozen_copy(self):
        source = {"a": 0.5}
        profile = UserProfile("u1", source)
        source["a"] = 0.9
        assert profile.score("a") == 0.5

    def test_properties_set(self):
        profile = UserProfile("u1", {"a": 0.1, "b": 1.0})
        assert profile.properties == frozenset({"a", "b"})

    def test_has_and_contains(self):
        profile = UserProfile("u1", {"a": 0.1})
        assert profile.has("a")
        assert "a" in profile
        assert not profile.has("b")

    def test_score_unknown_property_raises(self):
        with pytest.raises(UnknownPropertyError):
            UserProfile("u1", {}).score("missing")

    @pytest.mark.parametrize("bad", [-0.5, 1.5, float("nan")])
    def test_invalid_score_rejected(self, bad):
        with pytest.raises(InvalidScoreError):
            UserProfile("u1", {"a": bad})

    def test_boundary_scores_accepted(self):
        profile = UserProfile("u1", {"lo": 0.0, "hi": 1.0})
        assert profile.score("lo") == 0.0
        assert profile.score("hi") == 1.0

    def test_tiny_float_noise_clamped(self):
        profile = UserProfile("u1", {"a": 1.0 + 1e-13, "b": -1e-13})
        assert profile.score("a") == 1.0
        assert profile.score("b") == 0.0

    def test_with_score_returns_new_profile(self):
        profile = UserProfile("u1", {"a": 0.1})
        updated = profile.with_score("b", 0.2)
        assert "b" not in profile
        assert updated.score("b") == 0.2
        assert updated.user_id == "u1"

    def test_without_removes_properties(self):
        profile = UserProfile("u1", {"a": 0.1, "b": 0.2, "c": 0.3})
        assert profile.without(["a", "c"]).properties == frozenset({"b"})

    def test_restricted_to_keeps_only_listed(self):
        profile = UserProfile("u1", {"a": 0.1, "b": 0.2})
        assert profile.restricted_to(["b", "zzz"]).properties == frozenset({"b"})

    def test_len_and_iter(self):
        profile = UserProfile("u1", {"a": 0.1, "b": 0.2})
        assert len(profile) == 2
        assert sorted(profile) == ["a", "b"]


class TestUserRepository:
    def test_from_records(self):
        repo = UserRepository.from_records({"u1": {"a": 0.5}, "u2": {}})
        assert len(repo) == 2
        assert repo.profile("u1").score("a") == 0.5

    def test_duplicate_user_rejected(self):
        repo = UserRepository([UserProfile("u1", {})])
        with pytest.raises(DuplicateUserError):
            repo.add(UserProfile("u1", {}))

    def test_unknown_user_raises(self):
        with pytest.raises(UnknownUserError):
            UserRepository().profile("ghost")

    def test_support_counts_carriers(self, table2_repo):
        assert table2_repo.support("livesIn Tokyo") == 2
        assert table2_repo.support("avgRating Mexican") == 4
        assert table2_repo.support("no-such-prop") == 0

    def test_users_with_returns_scores(self, table2_repo):
        carriers = table2_repo.users_with("livesIn Tokyo")
        assert carriers == {"Alice": 1.0, "David": 1.0}

    def test_scores_for_parallel_arrays(self, table2_repo):
        ids, scores = table2_repo.scores_for("avgRating CheapEats")
        assert len(ids) == len(scores) == 4
        lookup = dict(zip(ids, scores))
        assert lookup["Bob"] == pytest.approx(0.9)

    def test_scores_for_unknown_property(self):
        with pytest.raises(UnknownPropertyError):
            UserRepository().scores_for("nope")

    def test_mean_profile_size(self, table2_repo):
        # Table 2 sizes: Alice 6, Bob 5, Carol 4, David 3, Eve 5.
        assert table2_repo.mean_profile_size() == pytest.approx(23 / 5)

    def test_mean_profile_size_empty_raises(self):
        with pytest.raises(EmptyRepositoryError):
            UserRepository().mean_profile_size()

    def test_max_profile_size(self, table2_repo):
        assert table2_repo.max_profile_size() == 6
        assert UserRepository().max_profile_size() == 0

    def test_subset(self, table2_repo):
        sub = table2_repo.subset(["Alice", "Eve"])
        assert set(sub.user_ids) == {"Alice", "Eve"}
        assert sub.support("livesIn Tokyo") == 1

    def test_filter(self, table2_repo):
        sub = table2_repo.filter(lambda p: "livesIn Tokyo" in p)
        assert set(sub.user_ids) == {"Alice", "David"}

    def test_without_properties(self, table2_repo):
        stripped = table2_repo.without_properties(["avgRating Mexican"])
        assert stripped.support("avgRating Mexican") == 0
        assert stripped.support("livesIn Tokyo") == 2
        # Original untouched.
        assert table2_repo.support("avgRating Mexican") == 4

    def test_matrix_shape_and_fill(self, table2_repo):
        rows, cols, data = table2_repo.matrix(fill=-1.0)
        assert data.shape == (5, len(cols))
        alice = rows.index("Alice")
        mex = cols.index("avgRating Mexican")
        assert data[alice, mex] == pytest.approx(0.95)
        carol = rows.index("Carol")
        assert data[carol, mex] == -1.0  # Carol never rated Mexican

    def test_matrix_with_explicit_columns(self, table2_repo):
        rows, cols, data = table2_repo.matrix(labels=["livesIn Tokyo"])
        assert cols == ["livesIn Tokyo"]
        assert data.shape == (5, 1)
        assert data.sum() == 2.0

    def test_contains_and_iter(self, table2_repo):
        assert "Alice" in table2_repo
        assert "Zoe" not in table2_repo
        assert {p.user_id for p in table2_repo} == set(table2_repo.user_ids)

    def test_repr_mentions_counts(self, table2_repo):
        text = repr(table2_repo)
        assert "users=5" in text
