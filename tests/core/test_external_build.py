"""External-sort index builder: byte parity with the in-RAM path."""

import numpy as np
import pytest

from repro.core import (
    DatasetError,
    KWayMerge,
    SortedRunWriter,
    build_columnar_instance,
    build_index_external,
    load_index_npz,
    save_index_npz,
    select_from_index,
    streamed_index_checksum,
)
from repro.core.groups import GroupingConfig
from repro.datasets.synth import generate_profile_columns

ENTRY_DTYPE = np.dtype([("u", "<i4"), ("g", "<i4")])


def _npz_members(path):
    with np.load(path, allow_pickle=False) as data:
        return {name: np.array(data[name]) for name in data.files}


def _assert_byte_identical(external_path, ram_path):
    external = _npz_members(external_path)
    ram = _npz_members(ram_path)
    assert set(external) == set(ram)
    for name in sorted(ram):
        a, b = external[name], ram[name]
        assert a.dtype == b.dtype, name
        assert a.shape == b.shape, name
        np.testing.assert_array_equal(a, b, err_msg=name)
    assert streamed_index_checksum(external_path) == (
        streamed_index_checksum(ram_path)
    )


class TestByteParity:
    @pytest.mark.parametrize("weights", ["Iden", "LBS"])
    @pytest.mark.parametrize("coverage", ["Single", "Prop"])
    def test_schemes_byte_identical(self, tmp_path, weights, coverage):
        store = generate_profile_columns(
            n_users=400,
            n_properties=15,
            mean_profile_size=5.0,
            seed=11,
            store_dir=tmp_path / "store",
        )
        columns = generate_profile_columns(
            n_users=400, n_properties=15, mean_profile_size=5.0, seed=11
        )
        external_path = tmp_path / "external.npz"
        info = build_index_external(
            store,
            budget=10,
            out_path=external_path,
            weight_scheme=weights,
            coverage_scheme=coverage,
            run_entries=500,
            chunk_entries=300,
        )
        columnar = build_columnar_instance(
            columns,
            budget=10,
            weight_scheme=weights,
            coverage_scheme=coverage,
        )
        ram_path = tmp_path / "ram.npz"
        save_index_npz(columnar.index, ram_path, compressed=False)
        _assert_byte_identical(external_path, ram_path)
        assert info.payload_crc32 == streamed_index_checksum(ram_path)
        assert info.weight_scheme == weights
        assert info.coverage_scheme == coverage

    @pytest.mark.parametrize(
        "chunk",
        [1, 37, 1000],  # chunk = 1, non-divisor, chunk > n_users
        ids=["chunk-1", "non-divisor", "chunk-gt-n"],
    )
    def test_odd_generation_chunks_stay_parity(self, tmp_path, chunk):
        # The spill generator draws RNG noise per chunk, so parity holds
        # exactly when both modes use the same chunk size — including
        # degenerate ones.
        store = generate_profile_columns(
            n_users=150,
            n_properties=10,
            mean_profile_size=4.0,
            seed=5,
            chunk=chunk,
            store_dir=tmp_path / "store",
        )
        columns = generate_profile_columns(
            n_users=150,
            n_properties=10,
            mean_profile_size=4.0,
            seed=5,
            chunk=chunk,
        )
        external_path = tmp_path / "external.npz"
        build_index_external(
            store, budget=8, out_path=external_path, run_entries=128
        )
        ram_path = tmp_path / "ram.npz"
        save_index_npz(
            build_columnar_instance(columns, budget=8).index,
            ram_path,
            compressed=False,
        )
        _assert_byte_identical(external_path, ram_path)

    @pytest.mark.parametrize(
        "run_entries,chunk_entries",
        [(1, 1), (97, 64), (10**6, 10**6)],
        ids=["tiny", "non-divisor", "one-run"],
    )
    def test_odd_builder_granularities(
        self, tmp_path, run_entries, chunk_entries
    ):
        store = generate_profile_columns(
            n_users=120,
            n_properties=8,
            mean_profile_size=3.0,
            seed=2,
            store_dir=tmp_path / "store",
        )
        columns = generate_profile_columns(
            n_users=120, n_properties=8, mean_profile_size=3.0, seed=2
        )
        external_path = tmp_path / "external.npz"
        build_index_external(
            store,
            budget=6,
            out_path=external_path,
            run_entries=run_entries,
            chunk_entries=chunk_entries,
        )
        ram_path = tmp_path / "ram.npz"
        save_index_npz(
            build_columnar_instance(columns, budget=6).index,
            ram_path,
            compressed=False,
        )
        _assert_byte_identical(external_path, ram_path)

    def test_builder_accepts_store_path(self, tmp_path):
        store = generate_profile_columns(
            n_users=80,
            n_properties=6,
            mean_profile_size=3.0,
            seed=4,
            store_dir=tmp_path / "store",
        )
        info = build_index_external(
            store.directory, budget=5, out_path=tmp_path / "index.npz"
        )
        assert info.n_users <= 80
        restored = load_index_npz(tmp_path / "index.npz")
        result = select_from_index(restored, 5)
        assert len(result.selected) == 5

    def test_artifact_selects_like_in_ram(self, tmp_path):
        store = generate_profile_columns(
            n_users=300,
            n_properties=12,
            mean_profile_size=4.0,
            seed=9,
            store_dir=tmp_path / "store",
        )
        columns = generate_profile_columns(
            n_users=300, n_properties=12, mean_profile_size=4.0, seed=9
        )
        build_index_external(
            store,
            budget=10,
            out_path=tmp_path / "index.npz",
            grouping=GroupingConfig(),
            run_entries=256,
        )
        restored = load_index_npz(tmp_path / "index.npz")
        columnar = build_columnar_instance(columns, budget=10)
        mine = select_from_index(restored, 10, method="matrix")
        theirs = select_from_index(columnar.index, 10, method="matrix")
        assert mine.selected == theirs.selected
        assert mine.score == theirs.score


class TestKWayMerge:
    def _make_runs(self, tmp_path, n_entries=1000, run_entries=230, seed=0):
        """Spill a random canonical stream into >= 3 sorted runs."""
        rng = np.random.default_rng(seed)
        users = rng.integers(0, 120, size=n_entries).astype(np.int32)
        gids = np.arange(n_entries, dtype=np.int32)  # tags canonical order
        writer = SortedRunWriter(tmp_path / "runs", ENTRY_DTYPE, run_entries)
        for lo in range(0, n_entries, 113):
            writer.append(users[lo : lo + 113], gids[lo : lo + 113])
        writer.close()
        assert len(writer.run_paths) >= 3
        expected = np.empty(n_entries, dtype=ENTRY_DTYPE)
        expected["u"] = users
        expected["g"] = gids
        expected = expected[np.argsort(expected["u"], kind="stable")]
        return writer, expected

    def test_full_merge_is_global_stable_sort(self, tmp_path):
        writer, expected = self._make_runs(tmp_path)
        merge = KWayMerge(
            writer.run_paths, writer.run_counts, ENTRY_DTYPE,
            buffer_entries=64,
        )
        blocks = []
        while (block := merge.next_block()) is not None:
            blocks.append(block)
        merged = np.concatenate(blocks)
        np.testing.assert_array_equal(merged, expected)
        assert merge.emitted == merge.total == len(expected)

    def test_resume_mid_merge_continues_exactly(self, tmp_path):
        writer, expected = self._make_runs(tmp_path)
        first = KWayMerge(
            writer.run_paths, writer.run_counts, ENTRY_DTYPE,
            buffer_entries=32,
        )
        prefix = [first.next_block(), first.next_block()]
        state = first.state()
        assert 0 < first.emitted < first.total
        # A brand-new merge over the same runs picks up from the state,
        # re-reading only past the already-emitted offsets.
        resumed = KWayMerge(
            writer.run_paths, writer.run_counts, ENTRY_DTYPE,
            buffer_entries=32, state=state,
        )
        blocks = list(prefix)
        while (block := resumed.next_block()) is not None:
            blocks.append(block)
        np.testing.assert_array_equal(np.concatenate(blocks), expected)

    def test_resume_at_every_cut_point(self, tmp_path):
        writer, expected = self._make_runs(
            tmp_path, n_entries=400, run_entries=90
        )
        # Interrupt after each possible number of blocks and finish with
        # a resumed merge: every cut must reproduce the same stream.
        cut = 0
        while True:
            first = KWayMerge(
                writer.run_paths, writer.run_counts, ENTRY_DTYPE,
                buffer_entries=48,
            )
            blocks = []
            for _ in range(cut):
                block = first.next_block()
                if block is None:
                    break
                blocks.append(block)
            resumed = KWayMerge(
                writer.run_paths, writer.run_counts, ENTRY_DTYPE,
                buffer_entries=48, state=first.state(),
            )
            while (block := resumed.next_block()) is not None:
                blocks.append(block)
            np.testing.assert_array_equal(
                np.concatenate(blocks), expected, err_msg=f"cut={cut}"
            )
            if first.emitted >= first.total:
                break
            cut += 1

    def test_state_mismatch_rejected(self, tmp_path):
        writer, _ = self._make_runs(tmp_path)
        with pytest.raises(DatasetError, match="state"):
            KWayMerge(
                writer.run_paths, writer.run_counts, ENTRY_DTYPE,
                state={"consumed": [0]},
            )

    def test_truncated_run_detected(self, tmp_path):
        writer, _ = self._make_runs(tmp_path)
        path = writer.run_paths[0]
        path.write_bytes(path.read_bytes()[:-8])
        merge = KWayMerge(
            writer.run_paths, writer.run_counts, ENTRY_DTYPE,
            buffer_entries=1 << 20,
        )
        with pytest.raises(DatasetError, match="shorter"):
            while merge.next_block() is not None:
                pass

    def test_run_entries_validated(self, tmp_path):
        with pytest.raises(DatasetError, match="run_entries"):
            SortedRunWriter(tmp_path / "runs", ENTRY_DTYPE, 0)
