"""Unit tests for grouping-module checkpoints (JSON + ``.npz`` persistence)."""

import json

import numpy as np
import pytest

from repro.core import (
    DatasetError,
    EBSWeights,
    build_instance,
    greedy_select,
    instance_index,
    select_from_index,
    subset_score,
)
from repro.core.persistence import (
    group_set_from_dict,
    group_set_to_dict,
    instance_from_dict,
    instance_to_dict,
    load_index_npz,
    load_instance,
    save_index_npz,
    save_instance,
)


class TestGroupSetRoundtrip:
    def test_members_buckets_labels_survive(self, table2_groups):
        restored = group_set_from_dict(group_set_to_dict(table2_groups))
        assert len(restored) == len(table2_groups)
        for group in table2_groups:
            twin = restored.group(group.key)
            assert twin.members == group.members
            assert twin.label == group.label
            assert twin.bucket == group.bucket

    def test_user_links_rebuilt(self, table2_groups):
        restored = group_set_from_dict(group_set_to_dict(table2_groups))
        assert restored.groups_of("Alice") == table2_groups.groups_of("Alice")

    def test_complex_group_none_bucket(self, table2_groups):
        from repro.core import augment_with_intersections

        augmented = augment_with_intersections(table2_groups, max_new=3)
        restored = group_set_from_dict(group_set_to_dict(augmented))
        complex_restored = [g for g in restored if g.bucket is None]
        assert len(complex_restored) == 3

    def test_wrong_format_rejected(self):
        with pytest.raises(DatasetError):
            group_set_from_dict({"format": "nope", "groups": []})


class TestInstanceRoundtrip:
    def test_selection_identical_after_roundtrip(
        self, table2_repo, table2_instance
    ):
        restored = instance_from_dict(instance_to_dict(table2_instance))
        original = greedy_select(table2_repo, table2_instance)
        replay = greedy_select(table2_repo, restored)
        assert replay.selected == original.selected
        assert replay.score == original.score

    def test_ebs_big_integers_survive_json(self, table2_repo, table2_groups):
        instance = build_instance(
            table2_repo, 2, groups=table2_groups, weight_scheme=EBSWeights()
        )
        # Force a real JSON round-trip (string encoding), not just dicts.
        document = json.loads(json.dumps(instance_to_dict(instance)))
        restored = instance_from_dict(document)
        assert restored.wei == instance.wei
        assert max(restored.wei.values()) == 3**15  # (B+1)^(16 groups - 1)

    def test_save_load_files(self, table2_repo, table2_instance, tmp_path):
        path = tmp_path / "instance.json"
        save_instance(table2_instance, path)
        restored = load_instance(path)
        assert subset_score(restored, ["Alice", "Eve"]) == 17

    def test_wrong_format_rejected(self):
        with pytest.raises(DatasetError):
            instance_from_dict({"format": "nope"})

    def test_malformed_coverage_rejected(self, table2_instance):
        document = instance_to_dict(table2_instance)
        document["cov"] = {"broken": "much"}
        with pytest.raises(DatasetError):
            instance_from_dict(document)


class TestIndexNpzRoundtrip:
    def test_selection_identical_after_roundtrip(
        self, table2_instance, tmp_path
    ):
        index = instance_index(table2_instance)
        path = tmp_path / "index.npz"
        save_index_npz(index, path)
        restored = load_index_npz(path)
        original = select_from_index(index, table2_instance.budget)
        replay = select_from_index(restored, table2_instance.budget)
        assert replay.selected == original.selected
        assert replay.score == original.score
        assert replay.gains == original.gains

    def test_arrays_and_keys_survive(self, table2_instance, tmp_path):
        index = instance_index(table2_instance)
        path = tmp_path / "index.npz"
        save_index_npz(index, path)
        restored = load_index_npz(path)
        assert restored.users == index.users
        assert restored.group_keys == index.group_keys
        assert restored.vectorizable
        for name in ("u_indptr", "u_indices", "g_indptr", "g_indices"):
            assert np.array_equal(getattr(restored, name), getattr(index, name))
        assert np.array_equal(restored.wei, index.wei)
        assert np.array_equal(restored.cov, index.cov)
        assert np.array_equal(restored.initial_gains, index.initial_gains)

    def test_non_vectorizable_index_rejected(self, tmp_path):
        from repro.core import GroupingConfig, build_simple_groups
        from repro.datasets.synth import generate_profile_repository

        # EBS weights over dozens of ranked groups overflow int64, so the
        # index refuses to vectorize — and refuses to serialize.
        repo = generate_profile_repository(
            n_users=60, n_properties=30, mean_profile_size=10.0, seed=2
        )
        groups = build_simple_groups(repo, GroupingConfig())
        instance = build_instance(
            repo, 6, groups=groups, weight_scheme=EBSWeights()
        )
        index = instance_index(instance)
        assert not index.vectorizable
        with pytest.raises(DatasetError):
            save_index_npz(index, tmp_path / "index.npz")

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, format=np.asarray("not-an-index"))
        with pytest.raises(DatasetError):
            load_index_npz(path)


class TestCheckpointEnvelope:
    """Format-version + payload-checksum headers on every checkpoint."""

    def test_header_written(self, table2_instance, tmp_path):
        path = tmp_path / "instance.json"
        save_instance(table2_instance, path)
        document = json.loads(path.read_text())
        assert document["format"] == "podium-instance-v1"
        assert document["format_version"] == 2
        assert isinstance(document["payload_crc32"], int)

    def test_version_too_new_rejected(self, table2_instance, tmp_path):
        path = tmp_path / "instance.json"
        save_instance(table2_instance, path)
        document = json.loads(path.read_text())
        document["format_version"] = 99
        path.write_text(json.dumps(document))
        with pytest.raises(DatasetError, match="newer"):
            load_instance(path)

    def test_tampered_payload_rejected(self, table2_instance, tmp_path):
        path = tmp_path / "instance.json"
        save_instance(table2_instance, path)
        document = json.loads(path.read_text())
        document["payload"]["budget"] = 99  # edit without fixing the CRC
        path.write_text(json.dumps(document))
        with pytest.raises(DatasetError, match="checksum"):
            load_instance(path)

    def test_legacy_v1_bare_payload_loads(self, table2_instance, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(instance_to_dict(table2_instance)))
        loaded = load_instance(path)
        assert loaded.budget == table2_instance.budget
        assert loaded.wei == table2_instance.wei

    def _npz(self, table2_instance, tmp_path):
        index = instance_index(table2_instance)
        path = tmp_path / "index.npz"
        save_index_npz(index, path)
        return path

    def test_npz_header_written(self, table2_instance, tmp_path):
        path = self._npz(table2_instance, tmp_path)
        with np.load(path, allow_pickle=False) as data:
            assert int(data["format_version"]) == 2
            assert "payload_crc32" in data.files

    def test_npz_corrupted_array_rejected(self, table2_instance, tmp_path):
        path = self._npz(table2_instance, tmp_path)
        with np.load(path, allow_pickle=False) as data:
            arrays = {name: data[name] for name in data.files}
        arrays["cov"] = arrays["cov"] + 1  # corrupt without fixing the CRC
        np.savez_compressed(path, **arrays)
        with pytest.raises(DatasetError, match="checksum"):
            load_index_npz(path)

    def test_npz_version_too_new_rejected(self, table2_instance, tmp_path):
        path = self._npz(table2_instance, tmp_path)
        with np.load(path, allow_pickle=False) as data:
            arrays = {name: data[name] for name in data.files}
        arrays["format_version"] = np.asarray(99, dtype=np.int64)
        np.savez_compressed(path, **arrays)
        with pytest.raises(DatasetError, match="newer"):
            load_index_npz(path)

    def test_npz_legacy_headerless_loads(self, table2_instance, tmp_path):
        path = self._npz(table2_instance, tmp_path)
        with np.load(path, allow_pickle=False) as data:
            arrays = {
                name: data[name]
                for name in data.files
                if name not in ("format_version", "payload_crc32")
            }
        np.savez_compressed(path, **arrays)
        index = load_index_npz(path)
        assert index.users == instance_index(table2_instance).users


MMAP_MEMBERS = (
    "u_indptr",
    "u_indices",
    "g_indptr",
    "g_indices",
    "cov",
    "wei",
    "initial_gains",
)


class TestIndexNpzMmap:
    def test_uncompressed_archive_memory_maps(
        self, table2_instance, tmp_path
    ):
        index = instance_index(table2_instance)
        path = tmp_path / "index.npz"
        save_index_npz(index, path, compressed=False)
        restored = load_index_npz(path, mmap=True)
        for name in MMAP_MEMBERS:
            array = getattr(restored, name)
            assert isinstance(array, np.memmap), name
            assert np.array_equal(array, getattr(index, name)), name

    def test_mmap_selection_identical(self, table2_instance, tmp_path):
        index = instance_index(table2_instance)
        path = tmp_path / "index.npz"
        save_index_npz(index, path, compressed=False)
        restored = load_index_npz(path, mmap=True)
        original = select_from_index(index, table2_instance.budget)
        replay = select_from_index(restored, table2_instance.budget)
        assert replay.selected == original.selected
        assert replay.score == original.score

    def test_compressed_archive_falls_back_to_eager(
        self, table2_instance, tmp_path
    ):
        index = instance_index(table2_instance)
        path = tmp_path / "index.npz"
        save_index_npz(index, path, compressed=True)  # members deflated
        with pytest.warns(RuntimeWarning, match=r"DEFLATE-compressed"):
            restored = load_index_npz(path, mmap=True)
        for name in MMAP_MEMBERS:
            array = getattr(restored, name)
            assert not isinstance(array, np.memmap), name
            assert np.array_equal(array, getattr(index, name)), name

    def test_mmap_checksum_still_enforced(self, table2_instance, tmp_path):
        index = instance_index(table2_instance)
        path = tmp_path / "index.npz"
        save_index_npz(index, path, compressed=False)
        with np.load(path, allow_pickle=False) as data:
            arrays = {name: data[name] for name in data.files}
        arrays["cov"] = arrays["cov"] + 1  # corrupt without fixing the CRC
        np.savez(path, **arrays)
        with pytest.raises(DatasetError, match="checksum"):
            load_index_npz(path, mmap=True)
