"""Unit tests for grouping-module checkpoints (JSON persistence)."""

import json

import pytest

from repro.core import (
    DatasetError,
    EBSWeights,
    build_instance,
    greedy_select,
    subset_score,
)
from repro.core.persistence import (
    group_set_from_dict,
    group_set_to_dict,
    instance_from_dict,
    instance_to_dict,
    load_instance,
    save_instance,
)


class TestGroupSetRoundtrip:
    def test_members_buckets_labels_survive(self, table2_groups):
        restored = group_set_from_dict(group_set_to_dict(table2_groups))
        assert len(restored) == len(table2_groups)
        for group in table2_groups:
            twin = restored.group(group.key)
            assert twin.members == group.members
            assert twin.label == group.label
            assert twin.bucket == group.bucket

    def test_user_links_rebuilt(self, table2_groups):
        restored = group_set_from_dict(group_set_to_dict(table2_groups))
        assert restored.groups_of("Alice") == table2_groups.groups_of("Alice")

    def test_complex_group_none_bucket(self, table2_groups):
        from repro.core import augment_with_intersections

        augmented = augment_with_intersections(table2_groups, max_new=3)
        restored = group_set_from_dict(group_set_to_dict(augmented))
        complex_restored = [g for g in restored if g.bucket is None]
        assert len(complex_restored) == 3

    def test_wrong_format_rejected(self):
        with pytest.raises(DatasetError):
            group_set_from_dict({"format": "nope", "groups": []})


class TestInstanceRoundtrip:
    def test_selection_identical_after_roundtrip(
        self, table2_repo, table2_instance
    ):
        restored = instance_from_dict(instance_to_dict(table2_instance))
        original = greedy_select(table2_repo, table2_instance)
        replay = greedy_select(table2_repo, restored)
        assert replay.selected == original.selected
        assert replay.score == original.score

    def test_ebs_big_integers_survive_json(self, table2_repo, table2_groups):
        instance = build_instance(
            table2_repo, 2, groups=table2_groups, weight_scheme=EBSWeights()
        )
        # Force a real JSON round-trip (string encoding), not just dicts.
        document = json.loads(json.dumps(instance_to_dict(instance)))
        restored = instance_from_dict(document)
        assert restored.wei == instance.wei
        assert max(restored.wei.values()) == 3**15  # (B+1)^(16 groups - 1)

    def test_save_load_files(self, table2_repo, table2_instance, tmp_path):
        path = tmp_path / "instance.json"
        save_instance(table2_instance, path)
        restored = load_instance(path)
        assert subset_score(restored, ["Alice", "Eve"]) == 17

    def test_wrong_format_rejected(self):
        with pytest.raises(DatasetError):
            instance_from_dict({"format": "nope"})

    def test_malformed_coverage_rejected(self, table2_instance):
        document = instance_to_dict(table2_instance)
        document["cov"] = {"broken": "much"}
        with pytest.raises(DatasetError):
            instance_from_dict(document)
