"""Unit tests for weight and coverage schemes (Defs. 3.6–3.7)."""

import pytest

from repro.core import (
    COVERAGE_SCHEMES,
    WEIGHT_SCHEMES,
    EBSWeights,
    IdenWeights,
    LBSWeights,
    PropCoverage,
    SingleCoverage,
    coverage_scheme,
    weight_scheme,
)
from repro.core.errors import InvalidInstanceError
from repro.core.groups import Group, GroupKey, GroupSet
from repro.core.buckets import Bucket


def group_set(sizes: dict[str, int]) -> GroupSet:
    """Groups 'p0'..'pN' with prescribed member counts."""
    groups = []
    for name, size in sizes.items():
        members = frozenset(f"{name}-u{i}" for i in range(size))
        groups.append(
            Group(GroupKey(name, "high"), members, Bucket(0.5, 1.0, "high", True))
        )
    return GroupSet(groups)


class TestIden:
    def test_all_ones(self):
        gs = group_set({"a": 3, "b": 7})
        weights = IdenWeights().weights(gs, budget=2, population_size=10)
        assert set(weights.values()) == {1}


class TestLBS:
    def test_weights_equal_sizes(self):
        gs = group_set({"a": 3, "b": 7})
        weights = LBSWeights().weights(gs, budget=2, population_size=10)
        assert weights[GroupKey("a", "high")] == 3
        assert weights[GroupKey("b", "high")] == 7


class TestEBS:
    def test_larger_group_dominates_all_smaller(self):
        gs = group_set({"a": 1, "b": 2, "c": 3, "d": 4})
        budget = 3
        weights = EBSWeights().weights(gs, budget, population_size=10)
        ordered = sorted(weights.items(), key=lambda kv: kv[1])
        # Any single larger group must outweigh ALL smaller groups each
        # counted up to B times (the enforcement property).
        for i in range(1, len(ordered)):
            smaller_total = sum(w * budget for _, w in ordered[:i])
            assert ordered[i][1] > smaller_total

    def test_weights_are_exact_ints(self):
        gs = group_set({"a": 2, "b": 5})
        weights = EBSWeights().weights(gs, budget=4, population_size=10)
        assert all(isinstance(w, int) for w in weights.values())

    def test_tie_break_deterministic(self):
        gs = group_set({"a": 3, "b": 3})
        w1 = EBSWeights().weights(gs, 2, 10)
        w2 = EBSWeights().weights(gs, 2, 10)
        assert w1 == w2


class TestCoverage:
    def test_single_is_one(self):
        gs = group_set({"a": 5})
        cov = SingleCoverage().coverage(gs, budget=3, population_size=10)
        assert cov[GroupKey("a", "high")] == 1

    def test_prop_formula(self):
        gs = group_set({"a": 50, "b": 2})
        cov = PropCoverage().coverage(gs, budget=8, population_size=100)
        # floor(8 * 50 / 100) = 4 ; floor(8 * 2 / 100) = 0 -> clamped to 1.
        assert cov[GroupKey("a", "high")] == 4
        assert cov[GroupKey("b", "high")] == 1

    def test_prop_never_below_one(self):
        gs = group_set({"tiny": 1})
        cov = PropCoverage().coverage(gs, budget=2, population_size=1000)
        assert cov[GroupKey("tiny", "high")] == 1


class TestRegistries:
    def test_lookup_by_name(self):
        assert isinstance(weight_scheme("Iden"), IdenWeights)
        assert isinstance(weight_scheme("LBS"), LBSWeights)
        assert isinstance(weight_scheme("EBS"), EBSWeights)
        assert isinstance(coverage_scheme("Single"), SingleCoverage)
        assert isinstance(coverage_scheme("Prop"), PropCoverage)

    def test_registry_contents(self):
        assert set(WEIGHT_SCHEMES) == {"Iden", "LBS", "EBS"}
        assert set(COVERAGE_SCHEMES) == {"Single", "Prop"}

    def test_unknown_names_raise(self):
        with pytest.raises(InvalidInstanceError):
            weight_scheme("XXL")
        with pytest.raises(InvalidInstanceError):
            coverage_scheme("Half")

    @pytest.mark.parametrize("budget,population", [(0, 10), (2, 0)])
    def test_invalid_context_rejected(self, budget, population):
        gs = group_set({"a": 1})
        with pytest.raises(InvalidInstanceError):
            LBSWeights().weights(gs, budget, population)
