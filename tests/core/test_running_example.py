"""End-to-end replay of the paper's running example (Table 2, Examples
3.1, 3.5, 3.8, 4.3, 5.2, 6.2 and 6.4) — an executable transcript of the
paper's narrative."""

import pytest

from repro.core import (
    CoverageState,
    CustomizationFeedback,
    IdenWeights,
    build_instance,
    custom_select,
    explain_selection,
    greedy_select,
    subset_score,
)
from repro.core.groups import GroupKey


class TestExample35Groups:
    def test_tokyo_residents(self, table2_groups):
        tokyo = table2_groups.group(GroupKey("livesIn Tokyo", "true"))
        assert tokyo.members == frozenset({"Alice", "David"})

    def test_mexican_food_lovers(self, table2_groups):
        lovers = table2_groups.group(GroupKey("avgRating Mexican", "high"))
        assert lovers.members == frozenset({"Alice", "David", "Eve"})

    def test_complex_group_intersection(self, table2_groups):
        tokyo = table2_groups.group(GroupKey("livesIn Tokyo", "true"))
        lovers = table2_groups.group(GroupKey("avgRating Mexican", "high"))
        both = tokyo.intersect(lovers)
        assert both.members == frozenset({"Alice", "David"})


class TestExample38Selection:
    def test_lbs_single_alice_eve_score_17(self, table2_repo, table2_instance):
        result = greedy_select(table2_repo, table2_instance)
        assert set(result.selected) == {"Alice", "Eve"}
        assert result.score == 17
        assert subset_score(table2_instance, ["Alice", "Eve"]) == 17

    def test_iden_alice_bob_score_11(self, table2_repo, table2_groups):
        instance = build_instance(
            table2_repo, 2, groups=table2_groups, weight_scheme=IdenWeights()
        )
        result = greedy_select(table2_repo, instance)
        assert set(result.selected) == {"Alice", "Bob"}
        assert result.score == 11

    def test_iden_counts_represented_groups(self, table2_repo, table2_groups):
        """Under Iden the score IS the number of represented groups."""
        instance = build_instance(
            table2_repo, 2, groups=table2_groups, weight_scheme=IdenWeights()
        )
        selected = {"Alice", "Bob"}
        represented = {
            g.key for g in table2_groups if g.members & selected
        }
        assert subset_score(instance, selected) == len(represented) == 11


class TestExample43Execution:
    """Step-by-step trace of Algorithm 1's first two iterations."""

    def test_trace(self, table2_instance):
        state = CoverageState(table2_instance)
        # Line 2: initial marginal contributions (paper lists David as 6,
        # but its own updates 7−2−3=2 show 7 was intended).
        assert [
            state.marginal_gain(u)
            for u in ("Alice", "Bob", "Carol", "David", "Eve")
        ] == [10, 5, 7, 7, 10]

        # Iteration 1: Alice chosen (ties broken towards Alice here; the
        # paper notes selecting Eve leads to the same output).
        gain = state.add("Alice")
        assert gain == 10

        # David loses 2 (livesIn Tokyo) and 3 (avgRating Mexican high);
        # Eve loses 3; Carol loses 2 (ageGroup 50-64).
        assert state.marginal_gain("Carol") == 5
        assert state.marginal_gain("David") == 2
        assert state.marginal_gain("Eve") == 7

        # Iteration 2: Eve is the unique maximizer.
        gain = state.add("Eve")
        assert gain == 7
        assert state.score == 17
        assert state.selected == ["Alice", "Eve"]


class TestExample52Explanations:
    def test_group_explanations(self, table2_repo, table2_instance):
        result = greedy_select(table2_repo, table2_instance)
        explanation = explain_selection(result)
        by_label = {g.label: g for g in explanation.group_explanations}
        mexican = by_label["high scores for avgRating Mexican"]
        assert (mexican.weight, mexican.coverage) == (3, 1)
        tokyo = by_label["livesIn Tokyo"]
        assert (tokyo.weight, tokyo.coverage) == (2, 1)

    def test_subset_group_pair(self, table2_repo, table2_instance):
        result = greedy_select(table2_repo, table2_instance)
        explanation = explain_selection(result)
        mexican = next(
            e
            for e in explanation.subset_group_explanations
            if e.key == GroupKey("avgRating Mexican", "high")
        )
        assert mexican.as_tuple() == (1, 2)  # required 1, both selected in


class TestExamples62And64Customization:
    def test_full_flow(self, table2_repo, table2_groups, table2_instance):
        mexican = frozenset(
            g.key
            for g in table2_groups.buckets_of_property("avgRating Mexican")
        )
        lives_in = frozenset(
            g.key
            for g in table2_groups
            if g.key.property_label.startswith("livesIn ")
        )
        feedback = CustomizationFeedback(
            must_have=mexican, priority=lives_in
        )
        custom = custom_select(table2_repo, table2_instance, feedback)
        # Example 6.4: Carol excluded, {Alice, Eve} still best —
        # livesIn weight 3, other-properties weight 14.
        assert custom.refined_pool_size == 4
        assert set(custom.selected) == {"Alice", "Eve"}
        assert custom.priority_score == 3
        assert custom.standard_score == 14
