"""Unit tests for simple/complex groups and the grouping module."""

import pytest

from repro.core import (
    Group,
    GroupingConfig,
    GroupKey,
    GroupSet,
    InvalidInstanceError,
    UnknownGroupError,
    build_simple_groups,
    intersect_groups,
)
from repro.core.buckets import Bucket


def make_group(prop: str, bucket_label: str, members, lo=0.0, hi=1.0):
    return Group(
        GroupKey(prop, bucket_label),
        frozenset(members),
        Bucket(lo, hi, bucket_label, closed_hi=True),
    )


class TestGroup:
    def test_size(self):
        assert make_group("p", "high", {"a", "b"}).size == 2

    def test_contains_and_len(self):
        group = make_group("p", "high", {"a"})
        assert "a" in group
        assert "b" not in group
        assert len(group) == 1

    def test_default_label_numeric_bucket(self):
        group = make_group("avgRating Mexican", "high", {"a"})
        assert group.label == "high scores for avgRating Mexican"

    def test_default_label_boolean_true(self):
        group = Group(
            GroupKey("livesIn Tokyo", "true"),
            frozenset({"a"}),
            Bucket(0.5, 1.0, "true", closed_hi=True),
        )
        assert group.label == "livesIn Tokyo"

    def test_default_label_boolean_false(self):
        group = Group(
            GroupKey("livesIn Tokyo", "false"),
            frozenset(),
            Bucket(0.0, 0.5, "false"),
        )
        assert group.label == "not livesIn Tokyo"

    def test_intersect(self):
        a = make_group("p", "high", {"x", "y"})
        b = make_group("q", "low", {"y", "z"})
        both = a.intersect(b)
        assert both.members == frozenset({"y"})
        assert both.bucket is None
        assert "AND" in both.label

    def test_union(self):
        a = make_group("p", "high", {"x"})
        b = make_group("q", "low", {"z"})
        assert a.union(b).members == frozenset({"x", "z"})

    def test_intersect_groups_fold(self):
        groups = [
            make_group("p", "h", {"a", "b", "c"}),
            make_group("q", "h", {"b", "c"}),
            make_group("r", "h", {"c"}),
        ]
        assert intersect_groups(groups).members == frozenset({"c"})

    def test_intersect_groups_empty_raises(self):
        with pytest.raises(InvalidInstanceError):
            intersect_groups([])


class TestGroupSet:
    def test_bidirectional_links(self):
        gs = GroupSet([make_group("p", "high", {"a", "b"})])
        assert gs.groups_of("a") == {GroupKey("p", "high")}
        assert gs.group(GroupKey("p", "high")).members == frozenset({"a", "b"})

    def test_readd_replaces_and_unlinks(self):
        gs = GroupSet([make_group("p", "high", {"a", "b"})])
        gs.add(make_group("p", "high", {"c"}))
        assert gs.groups_of("a") == set()
        assert gs.group(GroupKey("p", "high")).members == frozenset({"c"})
        assert len(gs) == 1

    def test_readd_prunes_emptied_user_entries(self):
        """Regression: users unlinked from their last group must not
        linger as empty entries polluting degree/max_degree bookkeeping."""
        gs = GroupSet([make_group("p", "high", {"a", "b"})])
        gs.add(make_group("p", "high", {"b"}))
        assert gs.degree("a") == 0
        assert gs.max_degree() == 1
        assert "a" not in gs._user_groups
        # "b" stays linked: its entry was rewritten, not pruned.
        assert gs.groups_of("b") == {GroupKey("p", "high")}

    def test_groups_of_returns_cached_immutable_view(self):
        gs = GroupSet([make_group("p", "high", {"a"})])
        view = gs.groups_of("a")
        assert isinstance(view, frozenset)
        assert gs.groups_of("a") is view  # cached, no per-call copy
        gs.add(make_group("q", "low", {"a"}))
        refreshed = gs.groups_of("a")
        assert refreshed == {GroupKey("p", "high"), GroupKey("q", "low")}
        assert view == {GroupKey("p", "high")}  # old view unaffected

    def test_unknown_group_raises(self):
        with pytest.raises(UnknownGroupError):
            GroupSet().group(GroupKey("p", "x"))

    def test_degree_and_max(self):
        gs = GroupSet(
            [
                make_group("p", "h", {"a", "b"}),
                make_group("q", "h", {"a"}),
            ]
        )
        assert gs.degree("a") == 2
        assert gs.degree("b") == 1
        assert gs.degree("ghost") == 0
        assert gs.max_degree() == 2
        assert gs.max_group_size() == 2

    def test_top_k_by_size(self):
        gs = GroupSet(
            [
                make_group("p", "h", {"a"}),
                make_group("q", "h", {"a", "b", "c"}),
                make_group("r", "h", {"a", "b"}),
            ]
        )
        top2 = gs.top_k(2)
        assert [g.key.property_label for g in top2] == ["q", "r"]

    def test_restricted_to_users(self):
        gs = GroupSet([make_group("p", "h", {"a", "b", "c"})])
        restricted = gs.restricted_to_users({"a", "b"})
        assert restricted.group(GroupKey("p", "h")).members == frozenset(
            {"a", "b"}
        )
        # Original untouched.
        assert gs.group(GroupKey("p", "h")).size == 3

    def test_subset(self):
        gs = GroupSet(
            [make_group("p", "h", {"a"}), make_group("q", "h", {"b"})]
        )
        sub = gs.subset([GroupKey("p", "h")])
        assert len(sub) == 1
        assert GroupKey("q", "h") not in sub

    def test_reverse_links_built_lazily(self):
        gs = GroupSet([make_group("p", "h", {"a", "b"})])
        gs.add(make_group("q", "h", {"b"}))
        # Construction and adds never pay the reverse-link build...
        assert gs._user_groups is None
        # ...the first user-side query does, once, correctly.
        assert gs.groups_of("b") == {GroupKey("p", "h"), GroupKey("q", "h")}
        assert gs._user_groups is not None

    def test_projection_skips_reverse_links(self):
        gs = GroupSet(
            [make_group("p", "h", {"a"}), make_group("q", "h", {"b"})]
        )
        gs.groups_of("a")  # parent links exist
        sub = gs.subset([GroupKey("p", "h")])
        # The projection copies groups only: restricted_to_groups-style
        # rescales stay O(|keys|), never O(Σ|G|).
        assert sub._user_groups is None
        assert sub.groups_of("a") == {GroupKey("p", "h")}

    def test_add_after_build_maintains_links(self):
        gs = GroupSet([make_group("p", "h", {"a", "b"})])
        assert gs.degree("a") == 1  # builds the links
        gs.add(make_group("p", "h", {"b", "c"}))  # replace: unlinks "a"
        gs.add(make_group("q", "h", {"a"}))
        assert gs.groups_of("a") == {GroupKey("q", "h")}
        assert gs.groups_of("c") == {GroupKey("p", "h")}
        assert gs.max_degree() == 1

    def test_buckets_of_property(self, table2_groups):
        buckets = table2_groups.buckets_of_property("avgRating Mexican")
        labels = {g.key.bucket_label for g in buckets}
        assert labels == {"low", "high"}  # no user in the medium bucket


class TestGroupingConfig:
    def test_defaults(self):
        config = GroupingConfig()
        assert config.buckets_per_property == 3
        assert config.strategy == "jenks"

    @pytest.mark.parametrize("kwargs", [{"buckets_per_property": 0}, {"min_support": 0}])
    def test_validation(self, kwargs):
        with pytest.raises(InvalidInstanceError):
            GroupingConfig(**kwargs)


class TestBuildSimpleGroups:
    def test_running_example_group_sizes(self, table2_groups):
        """The LBS superscripts of Table 2 are exactly these sizes."""
        sizes = {
            str(g.key): g.size
            for g in table2_groups
        }
        assert sizes["livesIn Tokyo::true"] == 2
        assert sizes["ageGroup 50-64::true"] == 2
        assert sizes["avgRating Mexican::high"] == 3
        assert sizes["avgRating Mexican::low"] == 1
        assert sizes["visitFreq Mexican::medium"] == 2
        assert sizes["avgRating CheapEats::medium"] == 2
        assert sizes["visitFreq CheapEats::low"] == 2
        assert len(table2_groups) == 16

    def test_min_support_drops_rare_properties(self, table2_repo):
        groups = build_simple_groups(
            table2_repo, GroupingConfig(min_support=2, fixed_splits=(0.4, 0.65))
        )
        # livesIn NYC has support 1 and must be gone.
        assert all(
            g.key.property_label != "livesIn NYC" for g in groups
        )

    def test_drop_empty_buckets(self, table2_groups):
        assert all(g.size > 0 for g in table2_groups)

    def test_keep_empty_buckets_when_disabled(self, table2_repo):
        groups = build_simple_groups(
            table2_repo,
            GroupingConfig(fixed_splits=(0.4, 0.65), drop_empty=False),
        )
        empty = [g for g in groups if g.size == 0]
        assert empty  # e.g. avgRating Mexican::medium

    def test_members_match_bucket_ranges(self, table2_repo, table2_groups):
        for group in table2_groups:
            for user_id in group.members:
                score = table2_repo.profile(user_id).score(
                    group.key.property_label
                )
                assert group.bucket.contains(score)


class TestAugmentWithIntersections:
    def test_adds_largest_cross_property_intersections(self, table2_groups):
        from repro.core import augment_with_intersections

        augmented = augment_with_intersections(
            table2_groups, min_size=2, max_new=5
        )
        complex_groups = [g for g in augmented if g.bucket is None]
        assert 1 <= len(complex_groups) <= 5
        # The "Tokyo residents who are Mexican food lovers" group of
        # Example 3.5 ({Alice, David}) must be among them.
        assert any(
            g.members == frozenset({"Alice", "David"})
            for g in complex_groups
        )
        # Input untouched.
        assert all(g.bucket is not None for g in table2_groups)

    def test_min_size_filters(self, table2_groups):
        from repro.core import augment_with_intersections

        augmented = augment_with_intersections(
            table2_groups, min_size=3, max_new=50
        )
        complex_groups = [g for g in augmented if g.bucket is None]
        assert all(g.size >= 3 for g in complex_groups)

    def test_complex_groups_participate_in_selection(
        self, table2_repo, table2_groups
    ):
        from repro.core import (
            augment_with_intersections,
            build_instance,
            greedy_select,
        )

        augmented = augment_with_intersections(table2_groups, max_new=10)
        instance = build_instance(table2_repo, 2, groups=augmented)
        result = greedy_select(table2_repo, instance)
        assert len(result.selected) == 2
        # Complex groups add weight, so the score exceeds the simple-only 17.
        assert result.score > 17

    def test_invalid_min_size(self, table2_groups):
        import pytest as _pytest

        from repro.core import InvalidInstanceError, augment_with_intersections

        with _pytest.raises(InvalidInstanceError):
            augment_with_intersections(table2_groups, min_size=0)

    @pytest.mark.parametrize("max_new", (3, 10, 100))
    def test_prefix_bound_cutoff_emits_same_intersections(self, max_new):
        """The size-sorted cutoff must emit exactly the intersections the
        exhaustive pairwise scan picks, on a seeded realistic instance."""
        from repro.core import augment_with_intersections
        from repro.datasets.synth import generate_profile_repository

        repo = generate_profile_repository(
            n_users=80, n_properties=25, mean_profile_size=8.0, seed=7
        )
        groups = build_simple_groups(repo, GroupingConfig())

        # Reference: the original exhaustive O(n²) pairwise scan.
        simple = [g for g in groups if g.bucket is not None]
        simple.sort(key=lambda g: (-g.size, str(g.key)))
        reference = []
        for i in range(len(simple)):
            if simple[i].size < 2:
                break
            for j in range(i + 1, len(simple)):
                a, b = simple[i], simple[j]
                if b.size < 2:
                    break
                if a.key.property_label == b.key.property_label:
                    continue
                common = a.intersect(b)
                if common.size >= 2:
                    reference.append(common)
        reference.sort(key=lambda g: (-g.size, str(g.key)))
        expected = {g.key for g in reference[:max_new]}

        augmented = augment_with_intersections(
            groups, min_size=2, max_new=max_new
        )
        emitted = {g.key for g in augmented if g.bucket is None}
        assert emitted == expected
