"""End-to-end integration: the full Fig. 1 pipeline through every layer.

generate → derive (enrichment) → group (offline module) → build instance
→ select (greedy + customized) → explain → persist/restore → serve over
WSGI — one flow touching every subpackage, with cross-layer consistency
checks at each hand-off.
"""

import io
import json

import pytest

from repro.core import (
    CustomizationFeedback,
    GroupingConfig,
    build_instance,
    build_simple_groups,
    custom_select,
    explain_selection,
    greedy_select,
    instance_from_dict,
    instance_to_dict,
    subset_score,
)
from repro.datasets import (
    build_repository,
    generate,
    load_profiles,
    save_profiles,
    tripadvisor_config,
    tripadvisor_derive_config,
)
from repro.service import PodiumService, make_wsgi_app


@pytest.fixture(scope="module")
def pipeline(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("pipeline")
    dataset = generate(tripadvisor_config(n_users=120), seed=404)
    repository = build_repository(dataset, tripadvisor_derive_config())

    profiles_path = tmp / "profiles.json"
    save_profiles(repository, profiles_path)
    restored_repo = load_profiles(profiles_path)

    groups = build_simple_groups(restored_repo, GroupingConfig(min_support=2))
    instance = build_instance(restored_repo, budget=6, groups=groups)
    return dataset, restored_repo, groups, instance


class TestPipeline:
    def test_profiles_survive_disk_roundtrip(self, pipeline):
        _, repo, _, _ = pipeline
        assert len(repo) == 120
        assert repo.mean_profile_size() > 5

    def test_selection_and_explanations_consistent(self, pipeline):
        _, repo, groups, instance = pipeline
        result = greedy_select(repo, instance)
        assert len(result.selected) == 6

        explanation = explain_selection(result)
        # Every user explanation lists exactly the user's groups.
        for ue in explanation.user_explanations:
            assert {g.key for g in ue.groups} == groups.groups_of(ue.user_id)
        # Subset-group actual counts match set arithmetic.
        selected = set(result.selected)
        for sge in explanation.subset_group_explanations[:50]:
            assert sge.actual == len(
                groups.group(sge.key).members & selected
            )

    def test_customized_selection_respects_filters(self, pipeline):
        _, repo, groups, instance = pipeline
        # Must-have: the largest group; must-not: the second largest
        # that is disjoint from it (if any overlap, pick another).
        ordered = groups.top_k(10)
        must_have = ordered[0]
        must_not = next(
            (g for g in ordered[1:] if not (g.members & must_have.members)),
            None,
        )
        feedback = CustomizationFeedback(
            must_have=frozenset({must_have.key}),
            must_not=frozenset({must_not.key}) if must_not else frozenset(),
        )
        custom = custom_select(repo, instance, feedback)
        for user in custom.selected:
            assert user in must_have.members
            if must_not:
                assert user not in must_not.members

    def test_instance_checkpoint_replays_identically(self, pipeline):
        _, repo, _, instance = pipeline
        restored = instance_from_dict(
            json.loads(json.dumps(instance_to_dict(instance)))
        )
        assert (
            greedy_select(repo, restored).selected
            == greedy_select(repo, instance).selected
        )

    def test_service_agrees_with_library(self, pipeline, tmp_path):
        _, repo, _, instance = pipeline
        service = PodiumService(repo)
        app = make_wsgi_app(service)

        raw = json.dumps({"configuration": "default", "budget": 6,
                          "explain": False}).encode()
        environ = {
            "REQUEST_METHOD": "POST",
            "PATH_INFO": "/select",
            "QUERY_STRING": "",
            "CONTENT_LENGTH": str(len(raw)),
            "wsgi.input": io.BytesIO(raw),
        }
        status = {}
        body = b"".join(
            app(environ, lambda s, h: status.update(code=s))
        )
        assert status["code"].startswith("200")
        response = json.loads(body)
        assert len(response["selected"]) == 6
        # The HTTP selection scores identically when replayed locally on
        # the service's own instance (grouping configs match).
        service_instance = service.instance_for("default", budget=6)
        assert response["score"] == pytest.approx(
            float(subset_score(service_instance, response["selected"]))
        )

    def test_opinion_metrics_runnable_on_pipeline_output(self, pipeline):
        dataset, repo, _, instance = pipeline
        from repro.metrics import evaluate_opinions

        result = greedy_select(repo, instance)
        destinations = dataset.destinations(5)[:3]
        report = evaluate_opinions(
            dataset, {d: list(result.selected) for d in destinations}
        )
        assert report.destinations == len(destinations)
        assert 0.0 <= report.topic_sentiment_coverage <= 1.0
