"""End-to-end tests of the pre-fork worker pool over real HTTP.

Boots ``python -m repro serve --workers N`` as a subprocess and checks
the pool against the single-process server's contract: identical
selections, durable-before-ack forwarded writes that converge on every
worker immediately, an aggregated ``/metrics`` cluster document,
graceful SIGTERM draining with a single parent snapshot, and restart
identity between ``--workers 4`` and ``--workers 1`` booted from the
same data directory.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.datasets import example_repository
from repro.datasets.io import save_profiles
from repro.service import DiversificationConfiguration, PodiumService

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="pre-fork pool needs POSIX fork"
)

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)
SRC = os.path.join(REPO_ROOT, "src")

SELECT_BODY = json.dumps({"configuration": "cli"}).encode()


def request(port, path, body=None, timeout=30):
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=body,
        method="POST" if body is not None else "GET",
    )
    with urllib.request.urlopen(req, timeout=timeout) as response:
        return json.loads(response.read())


def boot(extra_args, env_extra=None):
    env = dict(os.environ, PYTHONPATH=SRC, PYTHONUNBUFFERED="1")
    env.update(env_extra or {})
    server = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--budget",
            "2",
            "--log-level",
            "warning",
            *extra_args,
        ],
        env=env,
        cwd=REPO_ROOT,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    line = server.stdout.readline()
    match = re.search(r"http://[^:]+:(\d+)", line)
    if not match:
        server.kill()
        server.wait()
        raise AssertionError(f"no address line: {line!r}")
    port = int(match.group(1))
    deadline = time.monotonic() + 60
    while True:
        try:
            request(port, "/health", timeout=5)
            return server, port, line
        except (OSError, urllib.error.URLError):
            if time.monotonic() > deadline:
                server.kill()
                server.wait()
                raise AssertionError("pool never became healthy") from None
            time.sleep(0.1)


def stop(server, sig=signal.SIGINT):
    server.send_signal(sig)
    try:
        return server.wait(timeout=30)
    except subprocess.TimeoutExpired:
        server.kill()
        server.wait()
        raise


def delta_body(i):
    return json.dumps(
        {"upserts": {f"pool{i:04d}": {"avgRating Mexican": 0.9}}}
    ).encode()


@pytest.fixture(scope="module")
def profiles_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("pool") / "profiles.json"
    save_profiles(example_repository(), path)
    return str(path)


def reference_selection():
    """What the in-process service answers for the same configuration."""
    service = PodiumService(example_repository())
    service.configurations.put(
        DiversificationConfiguration(
            name="cli",
            description="configuration assembled from CLI flags",
            budget=2,
            weight_scheme="LBS",
            coverage_scheme="Single",
            bucketing_strategy="jenks",
            min_support=1,
        )
    )
    return service.select("cli")


class TestPoolEndToEnd:
    def test_pool_lifecycle(self, profiles_file, tmp_path):
        data_dir = str(tmp_path / "data")
        server, port, line = boot(
            [
                "--profiles",
                profiles_file,
                "--workers",
                "2",
                "--data-dir",
                data_dir,
            ]
        )
        try:
            assert "2 workers" in line

            # Selection parity with the in-process service.
            want = reference_selection()
            got = request(port, "/select", SELECT_BODY)
            assert got["selected"] == want["selected"]
            assert got["score"] == want["score"]

            # Forwarded write: durable before ack, immediately visible
            # on every worker (repeat /health until both answered).
            ack = request(port, "/profiles/delta", delta_body(0))
            assert ack["durable"] is True
            assert ack["wal_seq"] == 1
            for _ in range(10):
                assert request(port, "/health")["users"] == 6

            # Aggregated metrics: cluster document + writer's storage.
            metrics = request(port, "/metrics")
            assert metrics["storage"]["wal_seq"] == 1
            cluster = metrics["cluster"]
            assert cluster["workers"] == 2
            assert cluster["live_workers"] == 2
            assert len(cluster["per_worker"]) == 2
            assert cluster["totals"]["forwarded_writes"] == 1
            assert cluster["writer"]["version"] == 1
            pids = {row["pid"] for row in cluster["per_worker"]}
            assert server.pid not in pids  # workers, not the parent

            # Writes that the writer rejects surface as HTTP 400.
            bad = urllib.request.Request(
                f"http://127.0.0.1:{port}/profiles/delta",
                data=json.dumps({"removals": ["ghost"]}).encode(),
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as failure:
                urllib.request.urlopen(bad, timeout=15)
            assert failure.value.code == 400
        finally:
            code = stop(server, signal.SIGTERM)

        # Graceful shutdown: clean exit plus a single parent snapshot.
        assert code == 0
        snapshots = os.listdir(os.path.join(data_dir, "snapshots"))
        assert "CURRENT" in snapshots
        assert any(name.startswith("snap-") for name in snapshots)

    def test_pool_without_store_replicates_in_memory(self, profiles_file):
        server, port, _ = boot(
            ["--profiles", profiles_file, "--workers", "2"]
        )
        try:
            ack = request(port, "/profiles/delta", delta_body(1))
            assert "wal_seq" not in ack  # no store: nothing durable
            for _ in range(8):
                assert request(port, "/health")["users"] == 6
        finally:
            assert stop(server, signal.SIGTERM) == 0

    def test_env_var_selects_pool(self, profiles_file):
        server, port, line = boot(
            ["--profiles", profiles_file],
            env_extra={"REPRO_SERVE_WORKERS": "2"},
        )
        try:
            assert "2 workers" in line
            assert request(port, "/health")["users"] == 5
        finally:
            assert stop(server, signal.SIGTERM) == 0


class TestRestartIdentity:
    def test_pool4_state_restarts_identically_under_single(
        self, profiles_file, tmp_path
    ):
        """`--workers 4` writes state that a `--workers 1` boot answers
        byte-identically — the durable format is process-model
        agnostic."""
        data_dir = str(tmp_path / "data")
        server, port, _ = boot(
            [
                "--profiles",
                profiles_file,
                "--workers",
                "4",
                "--data-dir",
                data_dir,
            ]
        )
        try:
            for i in range(3):
                request(port, "/profiles/delta", delta_body(i))
            request(port, "/select", SELECT_BODY)
            request(port, "/admin/snapshot", b"{}")
            for i in range(3, 6):
                request(port, "/profiles/delta", delta_body(i))
            want = request(port, "/select", SELECT_BODY)
        finally:
            assert stop(server, signal.SIGTERM) == 0

        server, port, line = boot(
            ["--workers", "1", "--data-dir", data_dir]
        )
        try:
            assert "workers" not in line  # legacy single-process banner
            got = request(port, "/select", SELECT_BODY)
            assert got == want  # the full response document, verbatim
            assert request(port, "/health")["users"] == 11
        finally:
            stop(server)
