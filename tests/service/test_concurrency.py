"""Concurrency coverage: RW-lock contention and pool invalidation.

Exercises the writer-preferring :class:`ReadWriteLock` under sustained
reader pressure, then the multi-process invalidation protocol at two
levels: an in-process variant (injectable RPC, real threads hammering
``ensure_fresh`` against a live writer) and a forked variant (a real
child process syncing over the unix control socket against shared-memory
counters — the exact production topology, minus the HTTP layer).
"""

import json
import os
import socket
import threading
import time

import pytest

from repro.datasets import example_repository
from repro.service import (
    DiversificationConfiguration,
    PodiumService,
    ReadWriteLock,
)
from repro.service.workers import (
    ChangeLog,
    ControlServer,
    SharedPoolState,
    WorkerRuntime,
    WriteCoordinator,
    unix_rpc,
)


def make_writer(capacity=1024):
    service = PodiumService(example_repository())
    service.configurations.put(
        DiversificationConfiguration(name="two", budget=2)
    )
    shared = SharedPoolState(2)
    changelog = ChangeLog(capacity=capacity)
    coordinator = WriteCoordinator(service, shared, changelog, False)
    return service, shared, changelog, coordinator


def make_follower(shared, coordinator, slot=0):
    service = PodiumService(example_repository())
    service.configurations.put(
        DiversificationConfiguration(name="two", budget=2)
    )
    runtime = WorkerRuntime(
        service, shared, slot, coordinator.handle, epoch=0, version=0
    )
    return service, runtime


def delta_body(i):
    return json.dumps(
        {"upserts": {f"conc{i:04d}": {"avgRating Mexican": 0.9}}}
    ).encode()


class TestReadWriteLockContention:
    def test_writer_not_starved_by_reader_stream(self):
        """A continuous stream of overlapping readers must not starve
        the writer: writer preference means every queued write turns
        around while readers keep arriving."""
        lock = ReadWriteLock()
        stop = threading.Event()
        writes_done = 0

        def reader():
            while not stop.is_set():
                with lock.read():
                    time.sleep(0.001)

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for t in readers:
            t.start()
        try:
            deadline = time.monotonic() + 10
            for _ in range(5):
                with lock.write():
                    writes_done += 1
                assert time.monotonic() < deadline, "writer starved"
        finally:
            stop.set()
            for t in readers:
                t.join(timeout=5)
        assert writes_done == 5

    def test_readers_see_no_torn_writes(self):
        """Readers under the lock always observe the pair invariant a
        writer maintains — no torn intermediate state."""
        lock = ReadWriteLock()
        state = {"a": 0, "b": 0}
        torn = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                with lock.read():
                    if state["a"] != state["b"]:
                        torn.append((state["a"], state["b"]))

        readers = [threading.Thread(target=reader) for _ in range(3)]
        for t in readers:
            t.start()
        for i in range(200):
            with lock.write():
                state["a"] = i
                state["b"] = i
        stop.set()
        for t in readers:
            t.join(timeout=5)
        assert not torn


class TestInvalidationThreaded:
    def test_version_bump_marks_worker_stale(self):
        _, shared, _, coordinator = make_writer()
        _, runtime = make_follower(shared, coordinator)
        assert not runtime.is_stale()
        status, payload = coordinator.handle_write(
            "POST", "/profiles/delta", delta_body(0)
        )
        assert status == 200 and payload["users"] == 6
        assert int(shared.version.value) == 1
        assert runtime.is_stale()

    def test_sync_replays_deltas_to_identical_state(self):
        writer, shared, _, coordinator = make_writer()
        follower, runtime = make_follower(shared, coordinator)
        for i in range(5):
            coordinator.handle_write("POST", "/profiles/delta", delta_body(i))
        assert runtime.ensure_fresh()
        assert not runtime.is_stale()
        assert len(follower.repository) == len(writer.repository) == 10
        want = writer.select("two", explain=False)
        got = follower.select("two", explain=False)
        assert got["selected"] == want["selected"]
        assert got["score"] == want["score"]

    def test_ring_overflow_forces_full_resync(self):
        writer, shared, _, coordinator = make_writer(capacity=2)
        follower, runtime = make_follower(shared, coordinator)
        for i in range(6):  # far beyond the 2-entry ring
            coordinator.handle_write("POST", "/profiles/delta", delta_body(i))
        reply = coordinator.handle_sync(runtime.epoch, runtime.version)
        assert reply["mode"] == "full"
        runtime.ensure_fresh()
        assert len(follower.repository) == len(writer.repository)
        assert runtime.version == int(shared.version.value)

    def test_profiles_post_bumps_epoch_and_resyncs(self):
        writer, shared, _, coordinator = make_writer()
        follower, runtime = make_follower(shared, coordinator)
        from repro.datasets import profiles_to_dict

        body = json.dumps(profiles_to_dict(example_repository())).encode()
        status, _ = coordinator.handle_write("POST", "/profiles", body)
        assert status == 200
        assert int(shared.epoch.value) == 1
        assert runtime.is_stale()
        runtime.ensure_fresh()
        assert runtime.epoch == 1
        assert len(follower.repository) == 5

    def test_configuration_put_replicates(self):
        writer, shared, _, coordinator = make_writer()
        follower, runtime = make_follower(shared, coordinator)
        config = DiversificationConfiguration(name="three", budget=3)
        status, _ = coordinator.handle_write(
            "POST", "/configurations", json.dumps(config.to_dict()).encode()
        )
        assert status == 201
        runtime.ensure_fresh()
        assert "three" in follower.configurations
        assert follower.configurations.get("three").budget == 3

    def test_rejected_write_publishes_nothing(self):
        _, shared, _, coordinator = make_writer()
        status, payload = coordinator.handle_write(
            "POST",
            "/profiles/delta",
            json.dumps({"removals": ["nobody-here"]}).encode(),
        )
        assert status == 400
        assert "error" in payload
        assert int(shared.version.value) == 0

    def test_contended_reads_converge_with_live_writer(self):
        """Reader threads spinning ensure_fresh + select against a
        writer applying deltas concurrently: no exception, no torn
        state, and the follower converges to the writer exactly."""
        writer, shared, _, coordinator = make_writer()
        follower, runtime = make_follower(shared, coordinator)
        errors = []
        stop = threading.Event()

        def read_loop():
            while not stop.is_set():
                try:
                    runtime.ensure_fresh()
                    follower.select("two", explain=False)
                except Exception as exc:  # noqa: BLE001 — the assertion
                    errors.append(exc)
                    return

        readers = [threading.Thread(target=read_loop) for _ in range(4)]
        for t in readers:
            t.start()
        for i in range(30):
            status, _ = coordinator.handle_write(
                "POST", "/profiles/delta", delta_body(i)
            )
            assert status == 200
        stop.set()
        for t in readers:
            t.join(timeout=10)
        assert not errors
        runtime.ensure_fresh()
        assert len(follower.repository) == len(writer.repository) == 35
        assert (
            follower.select("two", explain=False)
            == writer.select("two", explain=False)
        )


@pytest.mark.skipif(
    not hasattr(os, "fork"), reason="fork-based pool needs POSIX"
)
class TestInvalidationForked:
    def test_forked_worker_syncs_over_control_socket(self, tmp_path):
        """The production topology without HTTP: a forked child holding
        the pre-fork state syncs over a real unix socket when the
        shared-memory version counter moves."""
        service, shared, changelog, coordinator = make_writer()
        control_path = str(tmp_path / "control.sock")
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(control_path)
        listener.listen(8)
        control = ControlServer(listener, coordinator)

        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:  # child: wait for staleness, sync, report, exit
            verdict = b"0"
            try:
                os.close(read_fd)
                service.reset_concurrency_after_fork()
                runtime = WorkerRuntime(
                    service,
                    shared,
                    slot=1,
                    rpc=unix_rpc(control_path, timeout=10),
                    epoch=0,
                    version=0,
                )
                deadline = time.monotonic() + 15
                while not runtime.is_stale():
                    if time.monotonic() > deadline:
                        raise TimeoutError("never saw the version bump")
                    time.sleep(0.01)
                runtime.ensure_fresh()
                selection = service.select("two", explain=False)
                if (
                    len(service.repository) == 6
                    and "conc0000" in service.repository
                    and selection["selected"]
                ):
                    verdict = b"1"
            except Exception:  # noqa: BLE001 — verdict stays b"0"
                pass
            finally:
                try:
                    os.write(write_fd, verdict)
                except OSError:
                    pass
                os._exit(0)

        os.close(write_fd)
        try:
            status, _ = coordinator.handle_write(
                "POST", "/profiles/delta", delta_body(0)
            )
            assert status == 200
            verdict = os.read(read_fd, 1)
            _, exit_status = os.waitpid(pid, 0)
        finally:
            os.close(read_fd)
            control.close()
        assert exit_status == 0
        assert verdict == b"1"
        # The child's sync was counted in its shared slot.
        assert shared.counter_row(1)["syncs"] == 1
