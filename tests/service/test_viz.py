"""Unit tests for the visualization payloads (Fig. 2 panes)."""

import pytest

from repro.core import explain_selection, greedy_select
from repro.service import explanation_payload, render_text


@pytest.fixture()
def selection(table2_repo, table2_instance):
    result = greedy_select(table2_repo, table2_instance)
    explanation = explain_selection(
        result, distribution_properties=("avgRating Mexican",)
    )
    return result, explanation


class TestExplanationPayload:
    def test_left_pane_users(self, selection):
        _, explanation = selection
        payload = explanation_payload(explanation)
        users = [entry["user"] for entry in payload["left_pane"]]
        assert users == ["Alice", "Eve"]
        first = payload["left_pane"][0]
        assert first["group_count"] == 6
        assert len(first["top_groups"]) <= 5
        assert first["top_groups"][0]["weight"] == 3.0

    def test_middle_pane_coverage(self, selection):
        _, explanation = selection
        payload = explanation_payload(explanation)
        middle = payload["middle_pane"]
        assert middle["top_coverage_percent"] == pytest.approx(62.5)
        assert len(middle["groups"]) == 16
        assert all(
            set(g) == {"label", "required", "actual", "covered"}
            for g in middle["groups"]
        )

    def test_group_list_limit(self, selection):
        _, explanation = selection
        payload = explanation_payload(explanation, group_list_limit=4)
        assert len(payload["middle_pane"]["groups"]) == 4

    def test_right_pane_distribution(self, selection):
        _, explanation = selection
        payload = explanation_payload(explanation)
        right = payload["right_pane"]
        assert len(right) == 1
        assert right[0]["property"] == "avgRating Mexican"
        assert sum(right[0]["population"]) == pytest.approx(1.0, abs=0.01)

    def test_payload_is_json_serializable(self, selection):
        import json

        _, explanation = selection
        json.dumps(explanation_payload(explanation))


class TestRenderText:
    def test_contains_key_sections(self, selection):
        result, explanation = selection
        text = render_text(result, explanation)
        assert "Selected 2 users" in text
        assert "Alice" in text and "Eve" in text
        assert "COVERED" in text and "MISSING" in text
        assert "avgRating Mexican" in text
        assert "pop" in text and "subset" in text

    def test_limits_respected(self, selection):
        result, explanation = selection
        text = render_text(result, explanation, group_list_limit=2)
        flagged = [
            line for line in text.splitlines() if "required" in line
        ]
        assert len(flagged) == 2


class TestRenderHtml:
    def test_valid_standalone_document(self, selection):
        from repro.service import render_html

        result, explanation = selection
        html = render_html(result, explanation)
        assert html.startswith("<!DOCTYPE html>")
        assert html.endswith("</html>")
        assert "Alice" in html and "Eve" in html
        assert "avgRating Mexican" in html
        assert "class='covered'" in html
        assert "class='missing'" in html

    def test_labels_are_escaped(self, table2_repo):
        from repro.core import (
            UserProfile,
            UserRepository,
            build_instance,
            explain_selection,
            greedy_select,
        )
        from repro.service import render_html

        repo = UserRepository(
            [
                # Two properties so the hostile user wins the greedy pick.
                UserProfile("u<script>", {"a<b>": 1.0, "c&d": 0.5}),
                UserProfile("plain", {"a<b>": 0.0}),
            ]
        )
        instance = build_instance(repo, 1)
        result = greedy_select(repo, instance)
        assert result.selected == ("u<script>",)
        html = render_html(result, explain_selection(result))
        assert "<script>" not in html
        assert "u&lt;script&gt;" in html
        assert "a&lt;b&gt;" in html

    def test_group_list_limit(self, selection):
        from repro.service import render_html

        result, explanation = selection
        html = render_html(result, explanation, group_list_limit=3)
        assert html.count("<tr class=") == 3
