"""WAL shipping: follower bootstrap, streaming, lag metrics, promote.

The follower here runs against a *real* HTTP primary (an ephemeral-port
threaded server), exercising the exact `GET /admin/wal` / `GET
/admin/state` wire path the CLI standby uses — not an in-process
shortcut.  Selection parity between primary and follower is the
acceptance bar: a standby that replays the shipped WAL through the
incremental path must answer ``/select`` byte-identically.
"""

import json
import threading
import time
import urllib.request

import pytest

from repro.core.updates import ProfileDelta
from repro.core.profiles import UserProfile
from repro.datasets.synth import generate_profile_repository
from repro.service import (
    PodiumService,
    WalFollower,
    make_http_server,
)
from repro.storage import DurableRepositoryStore

BUDGET = 3


def _repo(seed=17):
    return generate_profile_repository(
        n_users=20, n_properties=8, mean_profile_size=5.0, seed=seed
    )


def _delta(n):
    return ProfileDelta(
        upserts=(
            UserProfile(f"rep{n:03d}", {"p0": 0.2 + 0.005 * n, "p1": 0.5}),
        ),
        removals=frozenset(),
    )


def _wait_until(predicate, timeout=10.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {message}")


@pytest.fixture()
def primary(tmp_path_factory):
    """A live HTTP primary with a durable store; yields (service, url)."""
    store = DurableRepositoryStore(
        tmp_path_factory.mktemp("primary"), fsync=False
    )
    service = PodiumService(store=store)
    service.load_repository(_repo())
    httpd = make_http_server(service, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    try:
        yield service, f"http://{host}:{port}"
    finally:
        httpd.shutdown()
        httpd.server_close()
        store.close()


def _follower_service(tmp_path_factory, with_store=True):
    store = (
        DurableRepositoryStore(
            tmp_path_factory.mktemp("follower"), fsync=False
        )
        if with_store
        else None
    )
    service = PodiumService(store=store)
    service.read_only = True
    return service


def _get_json(url):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return json.loads(resp.read().decode())


class TestWalRoute:
    def test_admin_wal_ships_tail(self, primary):
        service, url = primary
        service.apply_profile_delta(_delta(0))
        service.apply_profile_delta(_delta(1))
        doc = _get_json(f"{url}/admin/wal?from_seq=0")
        assert doc["last_seq"] == 2
        assert doc["resync"] is False
        assert [r["seq"] for r in doc["records"]] == [1, 2]
        assert doc["records"][0]["payload"]["kind"] == "delta"

    def test_admin_wal_respects_cursor_and_limit(self, primary):
        service, url = primary
        for n in range(4):
            service.apply_profile_delta(_delta(n))
        doc = _get_json(f"{url}/admin/wal?from_seq=2&limit=1")
        assert [r["seq"] for r in doc["records"]] == [3]

    def test_admin_wal_flags_resync_after_compaction(self, primary):
        service, url = primary
        service.apply_profile_delta(_delta(0))
        service.compact_store()  # records 1.. are gone from the log
        service.apply_profile_delta(_delta(1))
        doc = _get_json(f"{url}/admin/wal?from_seq=0")
        assert doc["resync"] is True
        assert doc["records"] == []

    def test_admin_state_carries_wal_position(self, primary):
        service, url = primary
        service.apply_profile_delta(_delta(0))
        doc = _get_json(f"{url}/admin/state")
        assert doc["wal_seq"] == 1
        assert doc["profiles"]
        assert any(
            c["name"] == "default" for c in doc["configurations"]
        )


class TestFollower:
    def test_bootstrap_and_stream(self, primary, tmp_path_factory):
        service, url = primary
        service.apply_profile_delta(_delta(0))
        follower_svc = _follower_service(tmp_path_factory)
        follower = WalFollower(follower_svc, url, poll_interval=0.05)
        follower_svc.follower = follower
        follower.start()
        try:
            assert follower.applied_seq == 1  # bootstrap caught the delta
            for n in range(1, 4):
                service.apply_profile_delta(_delta(n))
            _wait_until(
                lambda: follower.applied_seq == 4,
                message="follower to reach seq 4",
            )
            # Byte-identical serving state.
            want = service.select("default", budget=BUDGET, explain=False)
            got = follower_svc.select(
                "default", budget=BUDGET, explain=False
            )
            assert got == want
            # The follower's own WAL adopted the primary's numbering.
            assert follower_svc.store.last_seq == 4
            stats = follower.stats()
            assert stats["lag_seq"] == 0
            assert stats["lag_seconds"] == 0.0
            assert stats["applied_records"] == 3
            metrics = follower_svc.metrics_snapshot()
            assert metrics["replication"]["state"] == "streaming"
        finally:
            follower.stop()

    def test_stateless_follower_streams_in_memory(
        self, primary, tmp_path_factory
    ):
        service, url = primary
        follower_svc = _follower_service(
            tmp_path_factory, with_store=False
        )
        follower = WalFollower(follower_svc, url, poll_interval=0.05)
        follower.start()
        try:
            service.apply_profile_delta(_delta(0))
            _wait_until(
                lambda: follower.applied_seq == 1,
                message="stateless follower to reach seq 1",
            )
            assert "rep000" in follower_svc.repository
        finally:
            follower.stop()

    def test_follower_resyncs_after_compaction_gap(
        self, primary, tmp_path_factory
    ):
        service, url = primary
        follower_svc = _follower_service(tmp_path_factory)
        follower = WalFollower(follower_svc, url, poll_interval=0.05)
        follower.start()
        try:
            resyncs_before = follower.resyncs
            service.apply_profile_delta(_delta(0))
            service.compact_store()  # ships nothing: the record is folded
            service.apply_profile_delta(_delta(1))
            _wait_until(
                lambda: follower.applied_seq == 2,
                message="follower to converge past the compaction",
            )
            assert follower.resyncs > resyncs_before
            assert "rep000" in follower_svc.repository
            assert "rep001" in follower_svc.repository
        finally:
            follower.stop()

    def test_follower_detects_epoch_reset(self, primary, tmp_path_factory):
        service, url = primary
        follower_svc = _follower_service(tmp_path_factory)
        follower = WalFollower(follower_svc, url, poll_interval=0.05)
        follower.start()
        try:
            replacement = _repo(seed=23)
            service.load_repository(replacement)  # epoch change, seq kept
            _wait_until(
                lambda: sorted(follower_svc.repository.user_ids)
                == sorted(replacement.user_ids),
                message="follower to adopt the new epoch",
            )
        finally:
            follower.stop()

    def test_read_only_follower_rejects_writes_with_503(
        self, primary, tmp_path_factory
    ):
        import urllib.error

        service, url = primary
        follower_svc = _follower_service(tmp_path_factory)
        follower = WalFollower(follower_svc, url, poll_interval=0.05)
        follower_svc.follower = follower
        follower.start()
        httpd = make_http_server(follower_svc, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        fhost, fport = httpd.server_address[:2]
        try:
            request = urllib.request.Request(
                f"http://{fhost}:{fport}/profiles/delta",
                data=json.dumps(
                    {"upserts": {"x": {"p0": 0.5}}}
                ).encode(),
                method="POST",
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(request, timeout=5)
            assert info.value.code == 503
            assert "read-only" in json.loads(
                info.value.read().decode()
            )["error"]
            # Reads still serve.
            health = _get_json(f"http://{fhost}:{fport}/health")
            assert health["status"] == "ok"
        finally:
            follower.stop()
            httpd.shutdown()
            httpd.server_close()


class TestPromote:
    def test_promote_enables_writes_and_keeps_acks(
        self, primary, tmp_path_factory
    ):
        service, url = primary
        for n in range(3):
            service.apply_profile_delta(_delta(n))
        follower_svc = _follower_service(tmp_path_factory)
        follower = WalFollower(follower_svc, url, poll_interval=0.05)
        follower_svc.follower = follower
        follower.start()
        _wait_until(
            lambda: follower.applied_seq == 3,
            message="follower to catch up before promotion",
        )
        document = follower_svc.promote()
        assert document["read_only"] is False
        assert document["promoted"] is True
        assert document["wal_seq"] == 3
        # Every replicated ack survived the takeover...
        for n in range(3):
            assert f"rep{n:03d}" in follower_svc.repository
        # ...and the new primary accepts writes, continuing the
        # primary's global sequence numbering.
        response = follower_svc.apply_profile_delta(_delta(99))
        assert response["wal_seq"] == 4
        assert follower.stats()["role"] == "primary"

    def test_promote_without_follower_is_idempotent(self, primary):
        service, _ = primary
        document = service.promote()
        assert document == {
            "read_only": False,
            "promoted": False,
            "wal_seq": service.store.last_seq,
        }
