"""Route-level coverage of the WSGI serving path.

Happy paths for every route, JSON error payloads for malformed input,
budget validation at the service boundary, delta-update invalidation,
cache hit/miss accounting via ``/metrics`` and a concurrent-select smoke
test against the threaded HTTP server.
"""

import io
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.datasets import example_repository, profiles_to_dict
from repro.service import (
    DiversificationConfiguration,
    PodiumService,
    make_http_server,
    make_wsgi_app,
)


@pytest.fixture()
def service():
    svc = PodiumService(example_repository())
    svc.configurations.put(
        DiversificationConfiguration(name="two", budget=2)
    )
    return svc


def make_client(service):
    """WSGI-level test client: ``call(method, path, body)`` → (status, body)."""
    app = make_wsgi_app(service)

    def call(method, path, body=None, query="", raw=None):
        payload = (
            raw
            if raw is not None
            else json.dumps(body or {}).encode()
        )
        environ = {
            "REQUEST_METHOD": method,
            "PATH_INFO": path,
            "QUERY_STRING": query,
            "CONTENT_LENGTH": str(len(payload)),
            "wsgi.input": io.BytesIO(payload),
        }
        captured = {}

        def start_response(status, headers):
            captured["status"] = int(status.split()[0])
            captured["headers"] = dict(headers)

        body_bytes = b"".join(app(environ, start_response))
        if captured["headers"]["Content-Type"].startswith(
            "application/json"
        ):
            return captured["status"], json.loads(body_bytes)
        return captured["status"], body_bytes

    return call


@pytest.fixture()
def client(service):
    return make_client(service)


class TestHappyPaths:
    def test_health(self, client):
        status, body = client("GET", "/health")
        assert status == 200
        assert body["status"] == "ok"
        assert body["users"] == 5
        assert "two" in body["configurations"]
        assert "generation" in body

    def test_metrics(self, client):
        client("POST", "/select", {"configuration": "two"})
        status, body = client("GET", "/metrics")
        assert status == 200
        assert body["requests"]["POST /select"]["count"] == 1
        assert body["requests"]["POST /select"]["errors"] == 0
        assert body["request_count"] >= 1
        assert "selection" in body["stages"]
        assert body["service"]["users"] == 5

    def test_configurations_roundtrip(self, client):
        status, body = client(
            "POST",
            "/configurations",
            {"name": "tiny", "budget": 1},
        )
        assert status == 201
        status, listing = client("GET", "/configurations")
        assert status == 200
        assert "tiny" in [c["name"] for c in listing]

    def test_profiles_load(self, client):
        document = profiles_to_dict(example_repository())
        status, body = client("POST", "/profiles", document)
        assert status == 200
        assert body["loaded_users"] == 5

    def test_groups(self, client):
        status, listing = client(
            "GET", "/groups", query="configuration=two"
        )
        assert status == 200
        assert len(listing) >= 9
        weights = [e["weight"] for e in listing]
        assert weights == sorted(weights, reverse=True)

    def test_select_plain(self, client):
        status, body = client(
            "POST", "/select", {"configuration": "two"}
        )
        assert status == 200
        assert set(body["selected"]) == {"Alice", "Eve"}
        assert body["score"] == 17.0
        assert "explanation" in body

    def test_select_with_feedback(self, client):
        status, body = client(
            "POST",
            "/select",
            {
                "configuration": "two",
                "feedback": {
                    "must_have": [["avgRating Mexican", "high"]],
                },
            },
        )
        assert status == 200
        # Only Alice rates Mexican highly; the refined pool is smaller
        # than the budget, so the selection stops early.
        assert body["selected"] == ["Alice"]
        assert body["refined_pool_size"] == 1

    def test_explain_html(self, client):
        status, body = client(
            "GET", "/explain.html", query="configuration=two"
        )
        assert status == 200
        assert body.startswith(b"<!DOCTYPE html>") or b"<html" in body


class TestErrorPayloads:
    def test_malformed_json_is_json_400(self, client):
        status, body = client("POST", "/select", raw=b"{not json")
        assert status == 400
        assert "error" in body

    def test_unknown_configuration_is_json_400(self, client):
        status, body = client(
            "POST", "/select", {"configuration": "nope"}
        )
        assert status == 400
        assert "unknown configuration" in body["error"]

    def test_infeasible_feedback_is_json_400(self, client):
        status, body = client(
            "POST",
            "/select",
            {
                "configuration": "two",
                "feedback": {
                    "must_have": [["avgRating Mexican", "high"]],
                    "must_not": [["avgRating Mexican", "high"]],
                },
            },
        )
        assert status == 400
        assert "error" in body

    def test_budget_zero_rejected(self, client):
        status, body = client(
            "POST", "/select", {"configuration": "two", "budget": 0}
        )
        assert status == 400
        assert "budget" in body["error"]

    def test_non_integer_budget_rejected(self, client):
        status, body = client(
            "POST",
            "/select",
            {"configuration": "two", "budget": "lots"},
        )
        assert status == 400
        assert "budget" in body["error"]

    def test_unknown_route_is_json_404(self, client):
        status, body = client("GET", "/nope")
        assert status == 404
        assert "error" in body

    def test_non_object_body_rejected(self, client):
        status, body = client("POST", "/select", raw=b"[1, 2]")
        assert status == 400
        assert "error" in body

    def test_unexpected_failure_is_json_500(self, service):
        app = make_wsgi_app(service)

        def boom(*args, **kwargs):
            raise RuntimeError("wired to fail")

        service.group_listing = boom
        environ = {
            "REQUEST_METHOD": "GET",
            "PATH_INFO": "/groups",
            "QUERY_STRING": "configuration=two",
            "CONTENT_LENGTH": "0",
            "wsgi.input": io.BytesIO(b""),
        }
        captured = {}

        def start_response(status, headers):
            captured["status"] = int(status.split()[0])
            captured["headers"] = dict(headers)

        body = json.loads(b"".join(app(environ, start_response)))
        assert captured["status"] == 500
        assert captured["headers"]["Content-Type"] == "application/json"
        assert "internal server error" in body["error"]
        assert "wired to fail" not in body["error"]  # no detail leak
        assert service.metrics.snapshot()["error_count"] == 1


class TestCaching:
    def test_repeat_select_hits_cache(self, service, client):
        client("POST", "/select", {"configuration": "two"})
        misses_after_first = service.metrics.cache_misses
        assert misses_after_first == 1
        client("POST", "/select", {"configuration": "two"})
        client("POST", "/select", {"configuration": "two"})
        _, body = client("GET", "/metrics")
        assert body["cache"]["instance_misses"] == misses_after_first
        assert body["cache"]["instance_hits"] == 2
        # Zero rebuilds → no further "instance"/"grouping" stage samples.
        assert body["stages"]["instance"]["count"] == 1
        assert body["stages"]["grouping"]["count"] == 1

    def test_budget_override_caches_separately(self, service, client):
        client("POST", "/select", {"configuration": "two"})
        client(
            "POST", "/select", {"configuration": "two", "budget": 1}
        )
        assert service.metrics.cache_misses == 2
        client(
            "POST", "/select", {"configuration": "two", "budget": 1}
        )
        assert service.metrics.cache_hits == 1

    def test_profile_reload_invalidates(self, service, client):
        client("POST", "/select", {"configuration": "two"})
        document = profiles_to_dict(example_repository())
        client("POST", "/profiles", document)
        client("POST", "/select", {"configuration": "two"})
        assert service.metrics.cache_misses == 2

    def test_configuration_put_invalidates_only_that_name(
        self, service, client
    ):
        client("POST", "/select", {"configuration": "two"})
        client("POST", "/select", {"configuration": "default"})
        assert service.metrics.cache_misses == 2
        client(
            "POST", "/configurations", {"name": "two", "budget": 3}
        )
        assert "default" in service.stats()["cached_configurations"]
        assert "two" not in service.stats()["cached_configurations"]
        client("POST", "/select", {"configuration": "default"})
        assert service.metrics.cache_hits == 1


class TestProfileDelta:
    def test_delta_applies_and_refreshes(self, service, client):
        client("POST", "/select", {"configuration": "two"})
        status, body = client(
            "POST",
            "/profiles/delta",
            {
                "upserts": {
                    "Zoe": {
                        "avgRating Mexican": 0.99,
                        "visitFreq Mexican": 0.9,
                    }
                },
            },
        )
        assert status == 200
        assert body["users"] == 6
        assert body["upserts"] == 1
        assert body["refreshed_configurations"] == ["two"]
        status, health = client("GET", "/health")
        assert health["users"] == 6

    def test_delta_refresh_counts_as_rebuild_not_miss(
        self, service, client
    ):
        client("POST", "/select", {"configuration": "two"})
        client(
            "POST",
            "/profiles/delta",
            {"upserts": {"Zoe": {"avgRating Mexican": 0.99}}},
        )
        # The refreshed instance is served from cache afterwards.
        client("POST", "/select", {"configuration": "two"})
        assert service.metrics.cache_misses == 1
        assert service.metrics.cache_hits == 1

    def test_delta_removal(self, service, client):
        status, body = client(
            "POST", "/profiles/delta", {"removals": ["Bob"]}
        )
        assert status == 200
        assert body["users"] == 4

    def test_delta_unknown_removal_is_json_400(self, client):
        status, body = client(
            "POST", "/profiles/delta", {"removals": ["Nobody"]}
        )
        assert status == 400
        assert "error" in body

    def test_delta_malformed_upserts_is_json_400(self, client):
        status, body = client(
            "POST", "/profiles/delta", {"upserts": ["Alice"]}
        )
        assert status == 400
        assert "upserts" in body["error"]

    def test_delta_selection_reflects_new_user(self, service, client):
        client(
            "POST",
            "/profiles/delta",
            {
                "upserts": {
                    "Zoe": {
                        "avgRating Mexican": 0.99,
                        "visitFreq Mexican": 0.9,
                        "avgRating CheapEats": 0.9,
                        "visitFreq CheapEats": 0.9,
                        "livesIn Tokyo": 1.0,
                        "ageGroup 50-64": 1.0,
                    }
                }
            },
        )
        status, body = client(
            "POST", "/select", {"configuration": "two", "budget": 6}
        )
        assert status == 200
        assert "Zoe" in body["selected"]


class TestThreadedServer:
    def test_concurrent_selects_smoke(self, service):
        httpd = make_http_server(service, "127.0.0.1", 0)
        port = httpd.server_address[1]
        thread = threading.Thread(
            target=httpd.serve_forever, daemon=True
        )
        thread.start()
        try:
            results = []
            errors = []

            def hit():
                request = urllib.request.Request(
                    f"http://127.0.0.1:{port}/select",
                    data=json.dumps(
                        {"configuration": "two", "explain": False}
                    ).encode(),
                    headers={"Content-Type": "application/json"},
                    method="POST",
                )
                try:
                    with urllib.request.urlopen(
                        request, timeout=10
                    ) as response:
                        results.append(json.load(response))
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            workers = [
                threading.Thread(target=hit) for _ in range(8)
            ]
            for w in workers:
                w.start()
            for w in workers:
                w.join(timeout=30)
            assert not errors
            assert len(results) == 8
            assert all(
                set(r["selected"]) == {"Alice", "Eve"} for r in results
            )
            # One build, seven cache hits.
            assert service.metrics.cache_misses == 1
            assert service.metrics.cache_hits == 7
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=10)

    def test_error_body_is_json_over_http(self, service):
        httpd = make_http_server(service, "127.0.0.1", 0)
        port = httpd.server_address[1]
        thread = threading.Thread(
            target=httpd.serve_forever, daemon=True
        )
        thread.start()
        try:
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/select",
                data=b"{broken",
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 400
            assert excinfo.value.headers.get("Content-Type") == (
                "application/json"
            )
            assert "error" in json.load(excinfo.value)
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=10)


class TestDurableStore:
    """Admin routes, durable delta acks and restart-identical selection."""

    @pytest.fixture()
    def durable(self, tmp_path):
        from repro.storage import DurableRepositoryStore

        store = DurableRepositoryStore(tmp_path / "data", fsync=False)
        svc = PodiumService(store=store)
        svc.configurations.put(
            DiversificationConfiguration(name="two", budget=2)
        )
        svc.load_repository(example_repository())
        yield svc, store
        store.close()

    def test_delta_ack_is_durable(self, durable):
        svc, store = durable
        call = make_client(svc)
        status, body = call(
            "POST",
            "/profiles/delta",
            {"upserts": {"Zoe": {"avgRating Mexican": 0.99}}},
        )
        assert status == 200
        assert body["durable"] is True
        assert body["wal_seq"] == 1
        assert store.last_seq == 1
        status, metrics = call("GET", "/metrics")
        assert metrics["ingest"]["deltas"] == 1
        assert metrics["storage"]["wal_seq"] == 1
        assert metrics["storage"]["n_users"] == 6

    def test_upsert_removal_clash_is_json_400(self, durable):
        svc, store = durable
        call = make_client(svc)
        status, body = call(
            "POST",
            "/profiles/delta",
            {
                "upserts": {"Bob": {"avgRating Mexican": 0.5}},
                "removals": ["Bob"],
            },
        )
        assert status == 400
        assert "error" in body
        assert store.last_seq == 0  # rejected before the WAL write

    def test_admin_snapshot_and_compact(self, durable):
        svc, store = durable
        call = make_client(svc)
        call(
            "POST",
            "/profiles/delta",
            {"upserts": {"Zoe": {"avgRating Mexican": 0.99}}},
        )
        status, body = call("POST", "/admin/snapshot")
        assert status == 200
        assert body["wal_records_pending"] == 0
        assert body["snapshot_path"]
        status, body = call("POST", "/admin/compact")
        assert status == 200
        assert body["wal_bytes"] == 0
        assert body["wal_seq"] == 1  # numbering survives

    def test_admin_routes_without_store_are_json_400(self, client):
        for path in ("/admin/snapshot", "/admin/compact"):
            status, body = client("POST", path)
            assert status == 400
            assert "data directory" in body["error"]

    def test_maintained_select(self, durable):
        svc, _ = durable
        call = make_client(svc)
        status, exact = call("POST", "/select", {"configuration": "two"})
        assert status == 200
        status, body = call(
            "POST", "/select", {"configuration": "two", "maintained": True}
        )
        assert status == 200
        assert body["maintained"] is True
        assert body["maintainer"]["resolves"] == 1
        assert body["selected"] == exact["selected"]

    def test_maintained_select_rejects_feedback(self, durable):
        svc, _ = durable
        call = make_client(svc)
        status, body = call(
            "POST",
            "/select",
            {
                "configuration": "two",
                "maintained": True,
                "feedback": {"must_have": [["avgRating Mexican", "high"]]},
            },
        )
        assert status == 400
        assert "error" in body

    def test_restart_identical_selection(self, tmp_path):
        from repro.storage import DurableRepositoryStore

        data_dir = tmp_path / "data"

        def boot(store):
            svc = PodiumService(store=store)
            svc.configurations.put(
                DiversificationConfiguration(name="two", budget=2)
            )
            return svc

        store = DurableRepositoryStore(data_dir, fsync=False)
        svc = boot(store)
        svc.load_repository(example_repository())
        call = make_client(svc)
        # Warm the artifact cache so the snapshot captures the frozen
        # group set for "two".
        call("POST", "/select", {"configuration": "two"})
        call("POST", "/admin/snapshot")
        # Post-snapshot churn: the restart must replay this from the WAL.
        call(
            "POST",
            "/profiles/delta",
            {"upserts": {"Zoe": {"avgRating Mexican": 0.99}}},
        )
        _, want = call("POST", "/select", {"configuration": "two"})
        store.close()

        reopened = DurableRepositoryStore(data_dir, fsync=False)
        restarted = boot(reopened)
        assert restarted.restore_artifacts() == ["two"]
        _, got = make_client(restarted)(
            "POST", "/select", {"configuration": "two"}
        )
        assert got["selected"] == want["selected"]
        assert got["score"] == want["score"]
        reopened.close()

    @pytest.mark.parametrize("mmap_indexes", (True, False))
    def test_restore_records_artifact_open_stage(
        self, tmp_path, mmap_indexes
    ):
        """Boot-time checkpoint adoption shows up in /metrics: mapped
        opens as ``artifact_open``, heap loads as ``artifact_open_eager``,
        and the storage section counts the mapped indexes."""
        from repro.storage import DurableRepositoryStore

        data_dir = tmp_path / "data"

        def boot(store):
            svc = PodiumService(store=store)
            svc.configurations.put(
                DiversificationConfiguration(name="two", budget=2)
            )
            return svc

        store = DurableRepositoryStore(data_dir, fsync=False)
        svc = boot(store)
        svc.load_repository(example_repository())
        call = make_client(svc)
        call("POST", "/select", {"configuration": "two"})
        call("POST", "/admin/snapshot")
        store.close()

        reopened = DurableRepositoryStore(
            data_dir, fsync=False, mmap_indexes=mmap_indexes
        )
        restarted = boot(reopened)
        assert restarted.restore_artifacts() == ["two"]
        status, body = make_client(restarted)("GET", "/metrics")
        assert status == 200
        expected_stage = (
            "artifact_open" if mmap_indexes else "artifact_open_eager"
        )
        assert body["stages"][expected_stage]["count"] == 1
        assert body["storage"]["mmap_indexes"] is mmap_indexes
        assert body["storage"]["mapped_artifact_indexes"] == (
            1 if mmap_indexes else 0
        )
        reopened.close()
