"""Unit tests for diversification configurations (paper §7)."""

import pytest

from repro.core import ServiceError
from repro.service import (
    ConfigurationStore,
    DiversificationConfiguration,
    default_configuration,
)


class TestConfiguration:
    def test_default_configuration(self):
        config = default_configuration()
        assert config.name == "default"
        assert config.weight_scheme == "LBS"
        assert config.coverage_scheme == "Single"
        assert config.budget == 8

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"weight_scheme": "MEGA"},
            {"coverage_scheme": "Half"},
            {"budget": 0},
        ],
    )
    def test_validation(self, kwargs):
        base = {"name": "x"}
        base.update(kwargs)
        with pytest.raises(ServiceError):
            DiversificationConfiguration(**base)

    def test_schemes_instantiation(self):
        config = DiversificationConfiguration(
            name="x", weight_scheme="EBS", coverage_scheme="Prop"
        )
        weight, coverage = config.schemes()
        assert weight.name == "EBS"
        assert coverage.name == "Prop"

    def test_property_filter(self):
        config = DiversificationConfiguration(
            name="x", property_prefixes=("avgRating",)
        )
        assert config.matches_property("avgRating Mexican")
        assert not config.matches_property("visitFreq Mexican")

    def test_no_filter_matches_everything(self):
        config = DiversificationConfiguration(name="x")
        assert config.matches_property("anything at all")

    def test_dict_roundtrip(self):
        config = DiversificationConfiguration(
            name="x",
            description="desc",
            property_prefixes=("a", "b"),
            weight_scheme="Iden",
            budget=3,
            bucketing_strategy="quantile",
        )
        restored = DiversificationConfiguration.from_dict(config.to_dict())
        assert restored == config

    def test_from_dict_malformed(self):
        with pytest.raises(ServiceError):
            DiversificationConfiguration.from_dict({"budget": "lots"})

    def test_grouping_config_propagates(self):
        config = DiversificationConfiguration(
            name="x", buckets_per_property=4, bucketing_strategy="kmeans",
            min_support=5,
        )
        grouping = config.grouping_config()
        assert grouping.buckets_per_property == 4
        assert grouping.strategy == "kmeans"
        assert grouping.min_support == 5


class TestConfigurationStore:
    def test_put_get_names(self):
        store = ConfigurationStore((default_configuration(),))
        assert "default" in store
        assert len(store) == 1
        store.put(DiversificationConfiguration(name="other"))
        assert set(store.names()) == {"default", "other"}

    def test_put_replaces(self):
        store = ConfigurationStore()
        store.put(DiversificationConfiguration(name="x", budget=3))
        store.put(DiversificationConfiguration(name="x", budget=9))
        assert store.get("x").budget == 9
        assert len(store) == 1

    def test_unknown_name_raises(self):
        with pytest.raises(ServiceError):
            ConfigurationStore().get("ghost")
