"""Route-level coverage of the constrained-selection API surface.

``POST /select`` grows a ``constraints`` block (floors/ceilings or a
cluster budget).  These tests exercise the JSON boundary (validation
errors become 400s with actionable messages), the satisfaction report
attached to successful responses, the mutual-exclusion guards against
``feedback``/``maintained``, the per-spec partition cache and the
constraint counters on ``GET /metrics``.
"""

import pytest

from repro.datasets import example_repository
from repro.service import (
    DiversificationConfiguration,
    PodiumService,
    parse_constraints,
)

from .test_routes import make_client


@pytest.fixture()
def service():
    svc = PodiumService(example_repository())
    svc.configurations.put(
        DiversificationConfiguration(name="two", budget=2)
    )
    return svc


@pytest.fixture()
def client(service):
    return make_client(service)


class TestParseBoundary:
    def test_absent_and_empty_blocks_mean_unconstrained(self):
        assert parse_constraints(None) is None
        assert parse_constraints({}) is None
        assert parse_constraints({"floors": []}) is None

    def test_parse_builds_spec(self):
        spec = parse_constraints(
            {"floors": [["livesIn Tokyo", "true", 1]]}
        )
        assert spec is not None
        assert spec.mode == "fair"


class TestFairRoute:
    def test_floors_and_ceilings_report(self, client):
        status, body = client(
            "POST",
            "/select",
            {
                "configuration": "two",
                "budget": 3,
                "constraints": {
                    "floors": [["livesIn Tokyo", "true", 1]],
                    "ceilings": [["avgRating Mexican", "high", 0]],
                },
            },
        )
        assert status == 200
        report = body["constraints"]
        assert report["mode"] == "fair"
        assert report["satisfied"] is True
        (floor,) = report["floors"]
        assert floor["property"] == "livesIn Tokyo"
        assert floor["achieved"] >= floor["bound"] == 1
        (ceiling,) = report["ceilings"]
        assert ceiling["achieved"] == 0
        # The zero-ceiling group has one member (Alice) who must be out.
        assert "Alice" not in body["selected"]
        assert len(body["selected"]) == 3
        assert "explanation" in body

    def test_floor_changes_selection(self, client):
        _, plain = client(
            "POST", "/select", {"configuration": "two"}
        )
        status, body = client(
            "POST",
            "/select",
            {
                "configuration": "two",
                "constraints": {
                    "ceilings": [["avgRating CheapEats", "medium", 0]]
                },
            },
        )
        assert status == 200
        # Both plain picks rate CheapEats medium; capping that bucket
        # at zero forces a different pair.
        assert set(body["selected"]) != set(plain["selected"])
        assert body["constraints"]["satisfied"] is True


class TestClusteredRoute:
    CLUSTERS = {"method": "stratified", "k": 2, "seed": 0}

    def test_cluster_report(self, client):
        status, body = client(
            "POST",
            "/select",
            {
                "configuration": "two",
                "budget": 3,
                "constraints": {"clusters": self.CLUSTERS},
            },
        )
        assert status == 200
        report = body["constraints"]
        assert report["mode"] == "clustered"
        assert report["satisfied"] is True
        seats = sum(c["seats"] for c in report["clusters"])
        picked = [
            u for c in report["clusters"] for u in c["selected"]
        ] + report["repair"]
        assert seats <= 3
        assert sorted(picked) == sorted(body["selected"])

    def test_partition_cached_per_spec(self, service):
        call = make_client(service)
        request = {
            "configuration": "two",
            "budget": 3,
            "constraints": {"clusters": self.CLUSTERS},
        }
        call("POST", "/select", request)
        call("POST", "/select", request)
        _, metrics = call("GET", "/metrics")
        assert metrics["stages"]["partition"]["count"] == 1
        # A different cluster spec builds its own partition.
        other = dict(request)
        other["constraints"] = {
            "clusters": {"method": "stratified", "k": 3, "seed": 0}
        }
        call("POST", "/select", other)
        _, metrics = call("GET", "/metrics")
        assert metrics["stages"]["partition"]["count"] == 2


class TestRejections:
    def test_malformed_constraints_is_json_400(self, client):
        status, body = client(
            "POST",
            "/select",
            {
                "configuration": "two",
                "constraints": {
                    "floors": [["livesIn Tokyo", "true", -1]]
                },
            },
        )
        assert status == 400
        assert "floor" in body["error"]

    def test_unknown_constraint_field_is_json_400(self, client):
        status, body = client(
            "POST",
            "/select",
            {"configuration": "two", "constraints": {"quotas": []}},
        )
        assert status == 400
        assert "error" in body

    def test_unknown_group_is_json_400(self, client):
        status, body = client(
            "POST",
            "/select",
            {
                "configuration": "two",
                "constraints": {
                    "floors": [["shoeSize", "47", 1]]
                },
            },
        )
        assert status == 400
        assert "unknown groups" in body["error"]

    def test_infeasible_floor_is_json_400_and_counted(
        self, service, client
    ):
        status, body = client(
            "POST",
            "/select",
            {
                "configuration": "two",
                "constraints": {
                    "floors": [["livesIn Tokyo", "true", 3]]
                },
            },
        )
        assert status == 400
        assert "livesIn Tokyo" in body["error"]
        snapshot = service.metrics.snapshot()["constraints"]
        assert snapshot["infeasible"] == 1

    def test_constraints_with_feedback_is_json_400(self, client):
        status, body = client(
            "POST",
            "/select",
            {
                "configuration": "two",
                "constraints": {
                    "floors": [["livesIn Tokyo", "true", 1]]
                },
                "feedback": {
                    "must_have": [["avgRating Mexican", "high"]]
                },
            },
        )
        assert status == 400
        assert "feedback" in body["error"]

    def test_constraints_with_maintained_is_json_400(self, client):
        status, body = client(
            "POST",
            "/select",
            {
                "configuration": "two",
                "maintained": True,
                "constraints": {
                    "floors": [["livesIn Tokyo", "true", 1]]
                },
            },
        )
        assert status == 400
        assert "maintained" in body["error"]


class TestMetricsCounters:
    def test_mode_and_verdict_counters(self, service):
        call = make_client(service)
        call(
            "POST",
            "/select",
            {
                "configuration": "two",
                "budget": 3,
                "constraints": {
                    "floors": [["livesIn Tokyo", "true", 1]]
                },
            },
        )
        call(
            "POST",
            "/select",
            {
                "configuration": "two",
                "budget": 3,
                "constraints": {
                    "clusters": {
                        "method": "stratified",
                        "k": 2,
                        "seed": 0,
                    }
                },
            },
        )
        call(
            "POST",
            "/select",
            {
                "configuration": "two",
                "constraints": {
                    "floors": [["livesIn Tokyo", "true", 3]]
                },
            },
        )
        _, metrics = call("GET", "/metrics")
        counters = metrics["constraints"]
        assert counters["fair"] == 2
        assert counters["clustered"] == 1
        assert counters["satisfied"] == 2
        assert counters["infeasible"] == 1
        assert counters["violated"] == 0
