"""Unit tests for the PodiumService facade and its WSGI adapter."""

import io
import json

import pytest

from repro.core import ServiceError
from repro.core.groups import GroupKey
from repro.datasets import example_repository, profiles_to_dict
from repro.service import (
    DiversificationConfiguration,
    PodiumService,
    make_wsgi_app,
    parse_feedback,
)


@pytest.fixture()
def service():
    svc = PodiumService(example_repository())
    svc.configurations.put(
        DiversificationConfiguration(name="two", budget=2)
    )
    return svc


@pytest.fixture()
def client(service):
    app = make_wsgi_app(service)

    def call(method, path, body=None, query=""):
        raw = json.dumps(body or {}).encode()
        environ = {
            "REQUEST_METHOD": method,
            "PATH_INFO": path,
            "QUERY_STRING": query,
            "CONTENT_LENGTH": str(len(raw)),
            "wsgi.input": io.BytesIO(raw),
        }
        captured = {}

        def start_response(status, headers):
            captured["status"] = int(status.split()[0])
            captured["headers"] = dict(headers)

        payload = b"".join(app(environ, start_response))
        return captured["status"], json.loads(payload)

    return call


class TestParseFeedback:
    def test_none_is_empty(self):
        feedback = parse_feedback(None)
        assert feedback.must_have == frozenset()
        assert feedback.standard is None

    def test_pairs_parsed(self):
        feedback = parse_feedback(
            {
                "must_have": [["p", "high"]],
                "priority": [["q", "low"], ["r", "true"]],
                "standard": [],
            }
        )
        assert feedback.must_have == frozenset({GroupKey("p", "high")})
        assert len(feedback.priority) == 2
        assert feedback.standard == frozenset()

    def test_malformed_pairs_raise(self):
        with pytest.raises(ServiceError):
            parse_feedback({"must_have": ["not-a-pair"]})


class TestServiceFacade:
    def test_select_default(self, service):
        response = service.select("two")
        assert set(response["selected"]) == {"Alice", "Eve"}
        assert response["score"] == 17.0
        assert "explanation" in response

    def test_select_budget_override(self, service):
        response = service.select("two", budget=1, explain=False)
        assert len(response["selected"]) == 1

    def test_group_cache_reused(self, service):
        first = service.groups_for("two")
        second = service.groups_for("two")
        assert first is second

    def test_load_repository_clears_cache(self, service):
        service.groups_for("two")
        assert "two" in service.stats()["cached_configurations"]
        generation = service.stats()["generation"]
        service.load_repository(example_repository())
        stats = service.stats()
        assert stats["cached_configurations"] == []
        assert stats["generation"] == generation + 1

    def test_no_profiles_loaded_raises(self):
        empty = PodiumService()
        with pytest.raises(ServiceError):
            empty.select()

    def test_group_listing_sorted(self, service):
        listing = service.group_listing("two")
        weights = [entry["weight"] for entry in listing]
        assert weights == sorted(weights, reverse=True)
        # LBS: the heaviest group is the largest one.
        assert listing[0]["weight"] == listing[0]["size"]
        assert listing[0]["size"] == max(e["size"] for e in listing)

    def test_property_prefix_configuration(self, service):
        service.configurations.put(
            DiversificationConfiguration(
                name="mex-only", property_prefixes=("avgRating",), budget=2
            )
        )
        listing = service.group_listing("mex-only")
        assert all(e["property"].startswith("avgRating") for e in listing)


class TestWsgiRoutes:
    def test_health(self, client):
        status, body = client("GET", "/health")
        assert status == 200
        assert body["users"] == 5
        assert "two" in body["configurations"]

    def test_list_configurations(self, client):
        status, body = client("GET", "/configurations")
        assert status == 200
        assert {c["name"] for c in body} >= {"default", "two"}

    def test_add_configuration(self, client):
        status, body = client(
            "POST", "/configurations", {"name": "added", "budget": 3}
        )
        assert status == 201
        assert body["name"] == "added"
        status, body = client("GET", "/configurations")
        assert "added" in {c["name"] for c in body}

    def test_load_profiles(self, client):
        document = profiles_to_dict(example_repository())
        # Reload over HTTP (replaces the same five users).
        status, body = client("POST", "/profiles", document)
        assert status == 200
        assert body["loaded_users"] == 5

    def test_groups_listing(self, client):
        status, body = client(
            "GET", "/groups", query="configuration=two"
        )
        assert status == 200
        # The service buckets with the default (jenks) strategy, so the
        # exact group count differs from the fixed-split running example;
        # every property must still contribute at least one group.
        assert len(body) >= 9
        assert {e["property"] for e in body} == set(
            example_repository().property_labels
        )

    def test_select_with_feedback(self, client):
        status, body = client(
            "POST",
            "/select",
            {
                "configuration": "two",
                "feedback": {
                    "must_not": [["livesIn Tokyo", "true"]],
                },
            },
        )
        assert status == 200
        assert "Alice" not in body["selected"]
        assert body["refined_pool_size"] == 3

    def test_select_distribution_properties(self, client):
        status, body = client(
            "POST",
            "/select",
            {
                "configuration": "two",
                "distribution_properties": ["avgRating Mexican"],
            },
        )
        assert status == 200
        right = body["explanation"]["right_pane"]
        assert right[0]["property"] == "avgRating Mexican"

    def test_unknown_route_404(self, client):
        status, body = client("GET", "/nope")
        assert status == 404

    def test_bad_configuration_400(self, client):
        status, body = client(
            "POST", "/select", {"configuration": "ghost"}
        )
        assert status == 400
        assert "error" in body

    def test_invalid_json_400(self, service):
        app = make_wsgi_app(service)
        environ = {
            "REQUEST_METHOD": "POST",
            "PATH_INFO": "/select",
            "QUERY_STRING": "",
            "CONTENT_LENGTH": "9",
            "wsgi.input": io.BytesIO(b"not json!"),
        }
        captured = {}

        def start_response(status, headers):
            captured["status"] = status

        payload = b"".join(app(environ, start_response))
        assert captured["status"].startswith("400")
        assert b"error" in payload


class TestExplainHtmlRoute:
    def test_returns_html_page(self, service):
        app = make_wsgi_app(service)
        environ = {
            "REQUEST_METHOD": "GET",
            "PATH_INFO": "/explain.html",
            "QUERY_STRING": "configuration=two",
            "CONTENT_LENGTH": "0",
            "wsgi.input": io.BytesIO(b""),
        }
        captured = {}

        def start_response(status, headers):
            captured["status"] = status
            captured["headers"] = dict(headers)

        body = b"".join(app(environ, start_response)).decode()
        assert captured["status"].startswith("200")
        assert captured["headers"]["Content-Type"].startswith("text/html")
        assert body.startswith("<!DOCTYPE html>")
        assert "Podium — two selection" in body

    def test_budget_override(self, client, service):
        html = service.explanation_page("two", budget=1)
        assert "Selected <b>1</b> users" in html

    def test_bad_configuration_reports_400(self, client):
        status, body = client("GET", "/explain.html", query="configuration=ghost")
        assert status == 400
