"""Unit tests for service metrics, stage timing and the RW lock."""

import json
import threading
import time

from repro.service import (
    ReadWriteLock,
    ServiceMetrics,
    StageTimer,
    render_metrics_text,
    request_log_record,
)


class TestStageTimer:
    def test_stages_accumulate(self):
        timer = StageTimer()
        with timer.stage("selection"):
            pass
        with timer.stage("selection"):
            pass
        with timer.stage("grouping"):
            pass
        assert set(timer.seconds) == {"selection", "grouping"}
        assert timer.seconds["selection"] >= 0.0

    def test_record_direct(self):
        timer = StageTimer()
        timer.record("x", 0.25)
        timer.record("x", 0.25)
        assert timer.seconds["x"] == 0.5


class TestServiceMetrics:
    def test_request_counts(self):
        metrics = ServiceMetrics()
        metrics.observe_request("POST /select", 200, 0.01)
        metrics.observe_request("POST /select", 400, 0.01)
        metrics.observe_request("GET /health", 200, 0.001)
        snapshot = metrics.snapshot()
        assert snapshot["requests"]["POST /select"] == {
            "count": 2,
            "errors": 1,
        }
        assert snapshot["request_count"] == 3
        assert snapshot["error_count"] == 1

    def test_stage_aggregation(self):
        metrics = ServiceMetrics()
        metrics.observe_request(
            "POST /select", 200, 0.5, {"selection": 0.2}
        )
        metrics.observe_request(
            "POST /select", 200, 0.3, {"selection": 0.4}
        )
        stages = metrics.snapshot()["stages"]
        assert stages["selection"]["count"] == 2
        assert abs(stages["selection"]["total_seconds"] - 0.6) < 1e-9
        assert abs(stages["selection"]["max_seconds"] - 0.4) < 1e-9
        assert stages["request"]["count"] == 2

    def test_cache_counters(self):
        metrics = ServiceMetrics()
        metrics.observe_cache(hit=False)
        metrics.observe_cache(hit=True)
        metrics.observe_cache(hit=True)
        assert metrics.cache_hits == 2
        assert metrics.cache_misses == 1
        cache = metrics.snapshot()["cache"]
        assert cache == {"instance_hits": 2, "instance_misses": 1}

    def test_snapshot_is_json_ready(self):
        metrics = ServiceMetrics()
        metrics.observe_request("GET /x", 200, 0.1, {"a": 0.1})
        json.dumps(metrics.snapshot())

    def test_concurrent_observations_not_lost(self):
        metrics = ServiceMetrics()

        def worker():
            for _ in range(200):
                metrics.observe_request("POST /select", 200, 0.001)
                metrics.observe_cache(hit=True)

        threads = [
            threading.Thread(target=worker) for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snapshot = metrics.snapshot()
        assert snapshot["requests"]["POST /select"]["count"] == 1600
        assert metrics.cache_hits == 1600


class TestRequestLogRecord:
    def test_is_one_json_line(self):
        line = request_log_record(
            "POST /select", 200, 0.0123, {"selection": 0.01}
        )
        assert "\n" not in line
        record = json.loads(line)
        assert record["route"] == "POST /select"
        assert record["status"] == 200
        assert record["duration_ms"] == 12.3
        assert record["stages_ms"]["selection"] == 10.0
        assert "error" not in record

    def test_error_included(self):
        record = json.loads(
            request_log_record("GET /x", 500, 0.1, None, "boom")
        )
        assert record["error"] == "boom"


class TestRenderMetricsText:
    def test_summary_sections(self):
        metrics = ServiceMetrics()
        metrics.observe_request(
            "POST /select", 200, 0.5, {"selection": 0.2}
        )
        metrics.observe_request("GET /metrics", 400, 0.1)
        metrics.observe_cache(hit=False)
        metrics.observe_cache(hit=True)
        text = render_metrics_text(metrics.snapshot())
        assert "2 requests" in text
        assert "1 errors" in text
        assert "POST /select" in text
        assert "1 hits / 1 misses" in text
        assert "selection" in text

    def test_empty_snapshot(self):
        text = render_metrics_text(ServiceMetrics().snapshot())
        assert "0 requests" in text


class TestReadWriteLock:
    def test_readers_share(self):
        lock = ReadWriteLock()
        entered = threading.Barrier(2, timeout=5)

        def reader():
            with lock.read():
                entered.wait()  # both readers inside together

        threads = [
            threading.Thread(target=reader) for _ in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert not any(t.is_alive() for t in threads)

    def test_writer_excludes_readers(self):
        lock = ReadWriteLock()
        order = []
        lock.acquire_write()

        def reader():
            with lock.read():
                order.append("reader")

        t = threading.Thread(target=reader)
        t.start()
        time.sleep(0.05)
        order.append("writer-release")
        lock.release_write()
        t.join(timeout=5)
        assert order == ["writer-release", "reader"]

    def test_waiting_writer_blocks_new_readers(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        writer_done = threading.Event()
        reader_done = threading.Event()

        def writer():
            lock.acquire_write()
            lock.release_write()
            writer_done.set()

        def late_reader():
            with lock.read():
                reader_done.set()

        wt = threading.Thread(target=writer)
        wt.start()
        time.sleep(0.05)  # writer now queued behind the reader
        rt = threading.Thread(target=late_reader)
        rt.start()
        time.sleep(0.05)
        # Writer preference: the late reader waits behind the writer.
        assert not reader_done.is_set()
        lock.release_read()
        wt.join(timeout=5)
        rt.join(timeout=5)
        assert writer_done.is_set() and reader_done.is_set()
