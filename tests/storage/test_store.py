"""Durable store: snapshot + WAL recovery, validation, compaction.

The invariant under test throughout: reopening a data directory yields
the exact serving state the writer last acknowledged — same users, same
groups, same selection — regardless of where in the snapshot/WAL cycle
the process died.
"""

import pytest

from repro.core.errors import StorageError, UnknownUserError
from repro.core.greedy import select_from_index
from repro.core.groups import GroupingConfig, build_simple_groups
from repro.core.index import instance_index
from repro.core.persistence import (
    index_source_path,
    load_index_npz,
    save_index_npz,
)
from repro.core.profiles import UserProfile
from repro.core.updates import ProfileDelta, rebuild_instance
from repro.datasets.synth import generate_profile_repository
from repro.storage import (
    DurableRepositoryStore,
    SnapshotArtifact,
    inspect_data_dir,
    scan_wal,
)
from repro.storage.snapshot import current_snapshot_path

BUDGET = 4


@pytest.fixture()
def repo():
    return generate_profile_repository(
        n_users=80, n_properties=30, mean_profile_size=8.0, seed=11
    )


def _same_repository(a, b):
    if sorted(a.user_ids) != sorted(b.user_ids):
        return False
    return all(
        a.profile(u).scores == b.profile(u).scores for u in a.user_ids
    )


def _delta(repo, n=0):
    template = repo.profile(sorted(repo.user_ids)[0])
    return ProfileDelta(
        upserts=(UserProfile(f"new{n:03d}", dict(template.scores)),),
        removals=frozenset(),
    )


class TestLifecycle:
    def test_initialize_then_reopen(self, repo, tmp_path):
        store = DurableRepositoryStore(tmp_path, fsync=False)
        store.initialize(repo)
        store.close()
        reopened = DurableRepositoryStore(tmp_path, fsync=False)
        assert _same_repository(reopened.repository, repo)
        assert reopened.replayed_records == 0
        reopened.close()

    def test_initialize_twice_rejected(self, repo, tmp_path):
        store = DurableRepositoryStore(tmp_path, fsync=False)
        store.initialize(repo)
        with pytest.raises(StorageError, match="reset"):
            store.initialize(repo)
        store.close()

    def test_replay_after_crash_without_snapshot(self, repo, tmp_path):
        store = DurableRepositoryStore(tmp_path, fsync=False)
        store.initialize(repo)
        for i in range(5):
            store.append_delta(_delta(repo, i))
        expected = store.repository
        store.close()  # no snapshot of the deltas: all 5 must replay
        reopened = DurableRepositoryStore(tmp_path, fsync=False)
        assert reopened.replayed_records == 5
        assert _same_repository(reopened.repository, expected)
        assert reopened.last_seq == 5
        reopened.close()

    def test_compact_empties_wal_and_keeps_numbering(self, repo, tmp_path):
        store = DurableRepositoryStore(tmp_path, fsync=False)
        store.initialize(repo)
        for i in range(3):
            store.append_delta(_delta(repo, i))
        store.compact()
        assert store.stats()["wal_records_pending"] == 0
        store.close()
        reopened = DurableRepositoryStore(tmp_path, fsync=False)
        assert reopened.replayed_records == 0
        assert reopened.snapshot_seq == 3
        # Post-compaction appends continue the global numbering.
        assert reopened.append_delta(_delta(repo, 99)) == 4
        reopened.close()

    def test_reset_discards_history(self, repo, tmp_path):
        store = DurableRepositoryStore(tmp_path, fsync=False)
        store.initialize(repo)
        store.append_delta(_delta(repo, 0))
        replacement = generate_profile_repository(
            n_users=10, n_properties=30, mean_profile_size=8.0, seed=12
        )
        store.reset(replacement)
        assert store.artifacts == {}
        store.close()
        reopened = DurableRepositoryStore(tmp_path, fsync=False)
        assert _same_repository(reopened.repository, replacement)
        assert reopened.replayed_records == 0
        reopened.close()


class TestValidation:
    def test_unknown_removal_rejected_before_wal_write(
        self, repo, tmp_path
    ):
        store = DurableRepositoryStore(tmp_path, fsync=False)
        store.initialize(repo)
        before = scan_wal(store.wal_path)
        with pytest.raises(UnknownUserError):
            store.append_delta(
                ProfileDelta(upserts=(), removals=frozenset({"ghost"}))
            )
        after = scan_wal(store.wal_path)
        assert len(after.records) == len(before.records)
        store.close()

    def test_log_delta_validates_too(self, repo, tmp_path):
        store = DurableRepositoryStore(tmp_path, fsync=False)
        store.initialize(repo)
        with pytest.raises(UnknownUserError):
            store.log_delta(
                ProfileDelta(upserts=(), removals=frozenset({"ghost"}))
            )
        store.close()

    def test_unknown_record_kind_fails_replay(self, repo, tmp_path):
        store = DurableRepositoryStore(tmp_path, fsync=False)
        store.initialize(repo)
        store._wal.append({"kind": "mystery"})
        store.close()
        with pytest.raises(StorageError, match="kind"):
            DurableRepositoryStore(tmp_path, fsync=False)


class TestArtifacts:
    def _artifact(self, repo):
        groups = build_simple_groups(repo, GroupingConfig(min_support=2))
        index = instance_index(rebuild_instance(groups, repo, BUDGET))
        return SnapshotArtifact(
            config={"budget": BUDGET}, groups=groups, index=index
        )

    def test_selection_identical_after_reopen(self, repo, tmp_path):
        store = DurableRepositoryStore(tmp_path, fsync=False)
        store.initialize(repo)
        artifact = self._artifact(repo)
        store.set_artifacts({"cfg": artifact})
        store.snapshot()
        want = select_from_index(artifact.index, BUDGET, method="matrix")
        store.close()

        reopened = DurableRepositoryStore(tmp_path, fsync=False)
        restored = reopened.artifacts["cfg"]
        assert restored.config == {"budget": BUDGET}
        assert restored.index is not None
        got = select_from_index(restored.index, BUDGET, method="matrix")
        assert got.selected == want.selected
        assert got.score == want.score
        reopened.close()

    def test_replay_drops_stale_indexes(self, repo, tmp_path):
        store = DurableRepositoryStore(tmp_path, fsync=False)
        store.initialize(repo)
        store.set_artifacts({"cfg": self._artifact(repo)})
        store.snapshot()
        store.append_delta(_delta(repo, 0))  # post-snapshot churn
        expected_users = len(store.repository)
        store.close()

        reopened = DurableRepositoryStore(tmp_path, fsync=False)
        assert reopened.replayed_records == 1
        restored = reopened.artifacts["cfg"]
        assert restored.index is None  # incidence changed after snapshot
        assert "new000" in reopened.repository
        assert len(reopened.repository) == expected_users
        reopened.close()


class TestMappedArtifacts:
    def _store_with_snapshot(self, repo, tmp_path):
        groups = build_simple_groups(repo, GroupingConfig(min_support=2))
        index = instance_index(rebuild_instance(groups, repo, BUDGET))
        store = DurableRepositoryStore(tmp_path, fsync=False)
        store.initialize(repo)
        store.set_artifacts(
            {
                "cfg": SnapshotArtifact(
                    config={"budget": BUDGET}, groups=groups, index=index
                )
            }
        )
        store.snapshot()
        want = select_from_index(index, BUDGET, method="matrix")
        store.close()
        return want

    def test_reopen_maps_artifact_indexes(self, repo, tmp_path):
        want = self._store_with_snapshot(repo, tmp_path)
        reopened = DurableRepositoryStore(
            tmp_path, fsync=False, mmap_indexes=True
        )
        restored = reopened.artifacts["cfg"]
        assert index_source_path(restored.index) is not None  # mapped
        stats = reopened.stats()
        assert stats["mmap_indexes"] is True
        assert stats["mapped_artifact_indexes"] == 1
        got = select_from_index(restored.index, BUDGET, method="matrix")
        assert got.selected == want.selected
        assert got.score == want.score
        reopened.close()

    def test_eager_reopen_reports_zero_mapped(self, repo, tmp_path):
        self._store_with_snapshot(repo, tmp_path)
        reopened = DurableRepositoryStore(
            tmp_path, fsync=False, mmap_indexes=False
        )
        assert index_source_path(reopened.artifacts["cfg"].index) is None
        stats = reopened.stats()
        assert stats["mmap_indexes"] is False
        assert stats["mapped_artifact_indexes"] == 0
        reopened.close()

    def test_legacy_compressed_snapshot_loads_eagerly(self, repo, tmp_path):
        """Pre-migration snapshots (DEFLATE index members) still load:
        recovery transparently falls back to the eager reader instead of
        refusing to map."""
        want = self._store_with_snapshot(repo, tmp_path)
        snap = current_snapshot_path(tmp_path)
        index_path = snap / "index-cfg.npz"
        save_index_npz(
            load_index_npz(index_path), index_path, compressed=True
        )
        with pytest.warns(RuntimeWarning, match="DEFLATE-compressed"):
            reopened = DurableRepositoryStore(
                tmp_path, fsync=False, mmap_indexes=True
            )
        restored = reopened.artifacts["cfg"]
        assert restored.index is not None
        assert index_source_path(restored.index) is None  # eager fallback
        assert reopened.stats()["mapped_artifact_indexes"] == 0
        got = select_from_index(restored.index, BUDGET, method="matrix")
        assert got.selected == want.selected
        assert got.score == want.score
        reopened.close()


class TestInspect:
    def test_inspect_reports_wal_and_snapshot(self, repo, tmp_path):
        store = DurableRepositoryStore(tmp_path, fsync=False)
        store.initialize(repo)
        store.append_delta(_delta(repo, 0))
        store.close()
        summary = inspect_data_dir(tmp_path)
        assert summary["wal_records"] == 1
        assert summary["wal_last_seq"] == 1
        assert summary["replay_pending"] == 1
        assert summary["snapshot"]["n_users"] == len(repo)
        assert summary["snapshot"]["wal_seq"] == 0

    def test_inspect_empty_dir(self, tmp_path):
        summary = inspect_data_dir(tmp_path)
        assert summary["wal_records"] == 0
        assert summary["snapshot"] is None
        assert summary["replay_pending"] == 0
