"""Write-ahead log: framing, crash recovery, sequence discipline.

The load-bearing test is the torn-tail property: a crash can cut the
file at *any* byte offset inside the final record, and recovery must
return exactly the intact prefix — never an error, never a partial
record.  We exercise every single truncation point of the last record.
"""

import errno
import json
import struct
import zlib

import pytest

from repro.core.errors import StorageError
from repro.storage import CrashFS, FaultPlan, WriteAheadLog, scan_wal

_HEADER = struct.Struct(">II")


def _write_records(path, count, fsync=False):
    with WriteAheadLog(path, fsync=fsync) as wal:
        for i in range(count):
            wal.append({"kind": "delta", "value": i})
    return path.read_bytes()


class TestRoundTrip:
    def test_append_then_scan(self, tmp_path):
        path = tmp_path / "wal.log"
        _write_records(path, 5)
        scan = scan_wal(path)
        assert [r.seq for r in scan.records] == [1, 2, 3, 4, 5]
        assert [r.payload["value"] for r in scan.records] == list(range(5))
        assert scan.torn_bytes == 0
        assert scan.valid_bytes == path.stat().st_size

    def test_missing_file_is_empty_scan(self, tmp_path):
        scan = scan_wal(tmp_path / "nope.log")
        assert scan.records == ()
        assert scan.last_seq == 0

    def test_reopen_continues_numbering(self, tmp_path):
        path = tmp_path / "wal.log"
        _write_records(path, 3)
        with WriteAheadLog(path, fsync=False) as wal:
            assert wal.last_seq == 3
            assert wal.append({"kind": "delta"}) == 4

    def test_seq_key_reserved(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal.log", fsync=False) as wal:
            with pytest.raises(StorageError, match="reserved"):
                wal.append({"seq": 9})

    def test_append_after_close_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log", fsync=False)
        wal.close()
        with pytest.raises(StorageError, match="closed"):
            wal.append({"kind": "delta"})


class TestTornTail:
    def test_truncation_at_every_byte_of_final_record(self, tmp_path):
        """The ISSUE's acceptance property: cut the file anywhere inside
        the last record and recovery yields exactly the N-1 prefix."""
        path = tmp_path / "wal.log"
        data = _write_records(path, 4)
        scan = scan_wal(path)
        last = scan.records[-1]
        prefix_end = last.offset
        for cut in range(prefix_end, len(data)):
            torn = tmp_path / f"torn-{cut}.log"
            torn.write_bytes(data[:cut])
            recovered = scan_wal(torn)
            assert [r.seq for r in recovered.records] == [1, 2, 3], cut
            assert recovered.valid_bytes == prefix_end, cut
            assert recovered.torn_bytes == cut - prefix_end, cut

    def test_open_truncates_torn_tail_and_appends_cleanly(self, tmp_path):
        path = tmp_path / "wal.log"
        data = _write_records(path, 3)
        path.write_bytes(data[:-5])  # cut inside the final record
        wal = WriteAheadLog(path, fsync=False)
        assert wal.truncated_bytes > 0
        assert wal.last_seq == 2
        assert wal.append({"kind": "delta"}) == 3
        wal.close()
        scan = scan_wal(path)
        assert [r.seq for r in scan.records] == [1, 2, 3]
        assert scan.torn_bytes == 0

    def test_crc_mismatch_ends_scan(self, tmp_path):
        path = tmp_path / "wal.log"
        data = bytearray(_write_records(path, 2))
        data[-1] ^= 0xFF  # flip a payload byte of the last record
        path.write_bytes(bytes(data))
        scan = scan_wal(path)
        assert [r.seq for r in scan.records] == [1]
        assert scan.torn_bytes > 0

    def test_implausible_length_prefix_is_tail_damage(self, tmp_path):
        path = tmp_path / "wal.log"
        intact = _write_records(path, 1)
        path.write_bytes(intact + _HEADER.pack(2**31, 0) + b"x" * 16)
        scan = scan_wal(path)
        assert [r.seq for r in scan.records] == [1]

    def test_checksummed_garbage_payload_is_tail_damage(self, tmp_path):
        # A record whose CRC passes but whose payload is not a JSON
        # object with a seq — e.g. written by a different tool.
        body = b"not json at all"
        frame = _HEADER.pack(len(body), zlib.crc32(body) & 0xFFFFFFFF)
        path = tmp_path / "wal.log"
        intact = _write_records(path, 2)
        path.write_bytes(intact + frame + body)
        scan = scan_wal(path)
        assert [r.seq for r in scan.records] == [1, 2]
        assert scan.torn_bytes == len(frame) + len(body)


class TestSequenceDiscipline:
    def test_regression_in_intact_prefix_raises(self, tmp_path):
        path = tmp_path / "wal.log"

        def frame(seq):
            body = json.dumps({"seq": seq}).encode()
            return (
                _HEADER.pack(len(body), zlib.crc32(body) & 0xFFFFFFFF)
                + body
            )

        path.write_bytes(frame(1) + frame(3) + frame(2))
        with pytest.raises(StorageError, match="regression"):
            scan_wal(path)

    def test_truncate_keeps_numbering_by_default(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path, fsync=False) as wal:
            for _ in range(3):
                wal.append({"kind": "delta"})
            wal.truncate()
            assert wal.size_bytes == 0
            assert wal.append({"kind": "delta"}) == 4

    def test_truncate_with_base_seq(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal.log", fsync=False) as wal:
            wal.truncate(base_seq=100)
            assert wal.append({"kind": "delta"}) == 101

    def test_advance_seq_only_on_empty_log(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal.log", fsync=False) as wal:
            wal.advance_seq(7)
            assert wal.append({"kind": "delta"}) == 8
            with pytest.raises(StorageError, match="still"):
                wal.advance_seq(50)
            wal.advance_seq(3)  # no-op: lower than current
            assert wal.last_seq == 8


class TestDiskFull:
    """``ENOSPC`` mid-append via the fault shim (satellite of ISSUE 9).

    A failed append must be invisible: ``last_seq`` does not advance,
    the on-disk tail stays on a record boundary (no garbage burying
    later appends), and the next append — after space frees up —
    succeeds with the sequence number the failed one would have taken.
    """

    def _full_disk_wal(self, tmp_path, errno_at, partial=True):
        # Two clean appends first (ops 0-3: write+fsync each), then the
        # injected failure lands inside the third.
        fs = CrashFS(
            FaultPlan(errno_at=errno_at, partial_writes=partial)
        )
        wal = WriteAheadLog(tmp_path / "wal.log", fsync=True, fs=fs)
        wal.append({"kind": "delta", "value": 0})
        wal.append({"kind": "delta", "value": 1})
        return wal

    def test_enospc_mid_write_rolls_back_cleanly(self, tmp_path):
        wal = self._full_disk_wal(tmp_path, errno_at=4)  # 3rd write op
        boundary = wal.size_bytes
        with pytest.raises(OSError) as info:
            wal.append({"kind": "delta", "value": 2})
        assert info.value.errno == errno.ENOSPC
        # Logical state unchanged: the ack never happened.
        assert wal.last_seq == 2
        assert wal.size_bytes == boundary
        # Physical state healed: the torn partial record is gone, the
        # file ends exactly on the last acknowledged boundary.
        assert (tmp_path / "wal.log").stat().st_size == boundary
        scan = scan_wal(tmp_path / "wal.log")
        assert [r.seq for r in scan.records] == [1, 2]
        assert scan.torn_bytes == 0
        # Space freed: the retry takes the seq the failed append missed.
        assert wal.append({"kind": "delta", "value": 2}) == 3
        wal.close()
        assert [r.seq for r in scan_wal(tmp_path / "wal.log").records] == [
            1,
            2,
            3,
        ]

    def test_enospc_at_fsync_rolls_the_record_back(self, tmp_path):
        # The record's bytes reached the page cache but the durability
        # barrier failed: it was never acknowledged, so it must be
        # removed — otherwise the retry would append a duplicate seq
        # behind it and recovery would refuse the whole log.
        wal = self._full_disk_wal(tmp_path, errno_at=5)  # 3rd fsync op
        with pytest.raises(OSError):
            wal.append({"kind": "delta", "value": 2})
        assert wal.last_seq == 2
        assert wal.append({"kind": "delta", "value": 2}) == 3
        wal.close()
        scan = scan_wal(tmp_path / "wal.log")
        assert [r.seq for r in scan.records] == [1, 2, 3]
        assert scan.torn_bytes == 0

    def test_reopen_after_unhealed_enospc_tail(self, tmp_path):
        # Even if the process dies before the in-process heal (or the
        # heal itself hit the full disk), the torn record is just tail
        # damage: reopening truncates it and appends continue cleanly.
        wal = self._full_disk_wal(tmp_path, errno_at=4)
        data_before = (tmp_path / "wal.log").read_bytes()
        with pytest.raises(OSError):
            wal.append({"kind": "delta", "value": 2})
        wal.release_fd()  # died without healing
        # Simulate the heal never happening: restore the torn image.
        torn = tmp_path / "torn.log"
        torn.write_bytes(
            data_before + b"\x00\x00\x01\x00garbage-partial-record"
        )
        reopened = WriteAheadLog(torn, fsync=False)
        assert reopened.truncated_bytes > 0
        assert reopened.last_seq == 2
        assert reopened.append({"kind": "delta"}) == 3
        reopened.close()
