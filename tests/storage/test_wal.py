"""Write-ahead log: framing, crash recovery, sequence discipline.

The load-bearing test is the torn-tail property: a crash can cut the
file at *any* byte offset inside the final record, and recovery must
return exactly the intact prefix — never an error, never a partial
record.  We exercise every single truncation point of the last record.
"""

import json
import struct
import zlib

import pytest

from repro.core.errors import StorageError
from repro.storage import WriteAheadLog, scan_wal

_HEADER = struct.Struct(">II")


def _write_records(path, count, fsync=False):
    with WriteAheadLog(path, fsync=fsync) as wal:
        for i in range(count):
            wal.append({"kind": "delta", "value": i})
    return path.read_bytes()


class TestRoundTrip:
    def test_append_then_scan(self, tmp_path):
        path = tmp_path / "wal.log"
        _write_records(path, 5)
        scan = scan_wal(path)
        assert [r.seq for r in scan.records] == [1, 2, 3, 4, 5]
        assert [r.payload["value"] for r in scan.records] == list(range(5))
        assert scan.torn_bytes == 0
        assert scan.valid_bytes == path.stat().st_size

    def test_missing_file_is_empty_scan(self, tmp_path):
        scan = scan_wal(tmp_path / "nope.log")
        assert scan.records == ()
        assert scan.last_seq == 0

    def test_reopen_continues_numbering(self, tmp_path):
        path = tmp_path / "wal.log"
        _write_records(path, 3)
        with WriteAheadLog(path, fsync=False) as wal:
            assert wal.last_seq == 3
            assert wal.append({"kind": "delta"}) == 4

    def test_seq_key_reserved(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal.log", fsync=False) as wal:
            with pytest.raises(StorageError, match="reserved"):
                wal.append({"seq": 9})

    def test_append_after_close_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log", fsync=False)
        wal.close()
        with pytest.raises(StorageError, match="closed"):
            wal.append({"kind": "delta"})


class TestTornTail:
    def test_truncation_at_every_byte_of_final_record(self, tmp_path):
        """The ISSUE's acceptance property: cut the file anywhere inside
        the last record and recovery yields exactly the N-1 prefix."""
        path = tmp_path / "wal.log"
        data = _write_records(path, 4)
        scan = scan_wal(path)
        last = scan.records[-1]
        prefix_end = last.offset
        for cut in range(prefix_end, len(data)):
            torn = tmp_path / f"torn-{cut}.log"
            torn.write_bytes(data[:cut])
            recovered = scan_wal(torn)
            assert [r.seq for r in recovered.records] == [1, 2, 3], cut
            assert recovered.valid_bytes == prefix_end, cut
            assert recovered.torn_bytes == cut - prefix_end, cut

    def test_open_truncates_torn_tail_and_appends_cleanly(self, tmp_path):
        path = tmp_path / "wal.log"
        data = _write_records(path, 3)
        path.write_bytes(data[:-5])  # cut inside the final record
        wal = WriteAheadLog(path, fsync=False)
        assert wal.truncated_bytes > 0
        assert wal.last_seq == 2
        assert wal.append({"kind": "delta"}) == 3
        wal.close()
        scan = scan_wal(path)
        assert [r.seq for r in scan.records] == [1, 2, 3]
        assert scan.torn_bytes == 0

    def test_crc_mismatch_ends_scan(self, tmp_path):
        path = tmp_path / "wal.log"
        data = bytearray(_write_records(path, 2))
        data[-1] ^= 0xFF  # flip a payload byte of the last record
        path.write_bytes(bytes(data))
        scan = scan_wal(path)
        assert [r.seq for r in scan.records] == [1]
        assert scan.torn_bytes > 0

    def test_implausible_length_prefix_is_tail_damage(self, tmp_path):
        path = tmp_path / "wal.log"
        intact = _write_records(path, 1)
        path.write_bytes(intact + _HEADER.pack(2**31, 0) + b"x" * 16)
        scan = scan_wal(path)
        assert [r.seq for r in scan.records] == [1]

    def test_checksummed_garbage_payload_is_tail_damage(self, tmp_path):
        # A record whose CRC passes but whose payload is not a JSON
        # object with a seq — e.g. written by a different tool.
        body = b"not json at all"
        frame = _HEADER.pack(len(body), zlib.crc32(body) & 0xFFFFFFFF)
        path = tmp_path / "wal.log"
        intact = _write_records(path, 2)
        path.write_bytes(intact + frame + body)
        scan = scan_wal(path)
        assert [r.seq for r in scan.records] == [1, 2]
        assert scan.torn_bytes == len(frame) + len(body)


class TestSequenceDiscipline:
    def test_regression_in_intact_prefix_raises(self, tmp_path):
        path = tmp_path / "wal.log"

        def frame(seq):
            body = json.dumps({"seq": seq}).encode()
            return (
                _HEADER.pack(len(body), zlib.crc32(body) & 0xFFFFFFFF)
                + body
            )

        path.write_bytes(frame(1) + frame(3) + frame(2))
        with pytest.raises(StorageError, match="regression"):
            scan_wal(path)

    def test_truncate_keeps_numbering_by_default(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path, fsync=False) as wal:
            for _ in range(3):
                wal.append({"kind": "delta"})
            wal.truncate()
            assert wal.size_bytes == 0
            assert wal.append({"kind": "delta"}) == 4

    def test_truncate_with_base_seq(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal.log", fsync=False) as wal:
            wal.truncate(base_seq=100)
            assert wal.append({"kind": "delta"}) == 101

    def test_advance_seq_only_on_empty_log(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal.log", fsync=False) as wal:
            wal.advance_seq(7)
            assert wal.append({"kind": "delta"}) == 8
            with pytest.raises(StorageError, match="still"):
                wal.advance_seq(50)
            wal.advance_seq(3)  # no-op: lower than current
            assert wal.last_seq == 8
