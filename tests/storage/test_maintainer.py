"""Streaming maintainer: repair rules, staleness, quality floor.

The maintainer must track a from-scratch matrix greedy closely under
churn (drop/fill/swap repairs) and reset itself once enough of the
population has been touched.  The quality checks here mirror the
``repro bench --suite ingest`` acceptance gate at test scale.
"""

import numpy as np
import pytest

from repro.core.errors import StorageError
from repro.core.greedy import select_from_index
from repro.core.groups import GroupingConfig, build_simple_groups
from repro.core.index import instance_index
from repro.core.instance import build_instance
from repro.core.profiles import UserProfile
from repro.core.updates import (
    ProfileDelta,
    apply_delta_to_repository,
    reassign_groups,
    rebuild_instance,
)
from repro.core.weights import EBSWeights
from repro.datasets.synth import generate_profile_repository
from repro.storage import StreamingMaintainer

BUDGET = 5


@pytest.fixture()
def repo():
    return generate_profile_repository(
        n_users=120, n_properties=40, mean_profile_size=10.0, seed=7
    )


@pytest.fixture()
def groups(repo):
    return build_simple_groups(repo, GroupingConfig(min_support=2))


def _index(groups, repo):
    return instance_index(rebuild_instance(groups, repo, BUDGET))


def _churn(repo, groups, delta):
    repo = apply_delta_to_repository(repo, delta)
    groups = reassign_groups(groups, repo, delta)
    return repo, groups, _index(groups, repo)


class TestConstruction:
    def test_initial_selection_matches_fresh_greedy(self, repo, groups):
        index = _index(groups, repo)
        maintainer = StreamingMaintainer(index, BUDGET)
        fresh = select_from_index(index, BUDGET, method="matrix")
        assert maintainer.selection == fresh.selected
        assert maintainer.score() == fresh.score
        assert maintainer.resolves == 1

    def test_non_vectorizable_index_rejected(self, repo, groups):
        index = instance_index(
            build_instance(
                repo, BUDGET, groups=groups, weight_scheme=EBSWeights()
            )
        )
        assert not index.vectorizable
        with pytest.raises(StorageError, match="vectorizable"):
            StreamingMaintainer(index, BUDGET)

    def test_invalid_knobs_rejected(self, repo, groups):
        index = _index(groups, repo)
        with pytest.raises(StorageError, match="budget"):
            StreamingMaintainer(index, 0)
        with pytest.raises(StorageError, match="swap_margin"):
            StreamingMaintainer(index, BUDGET, swap_margin=-0.1)
        with pytest.raises(StorageError, match="staleness"):
            StreamingMaintainer(index, BUDGET, staleness_fraction=0.0)


class TestRepairs:
    def test_removal_of_selected_member_drops_and_refills(
        self, repo, groups
    ):
        index = _index(groups, repo)
        maintainer = StreamingMaintainer(
            index, BUDGET, staleness_fraction=10.0
        )
        victim = maintainer.selection[0]
        repo, groups, index = _churn(
            repo,
            groups,
            ProfileDelta(upserts=(), removals=frozenset({victim})),
        )
        maintainer.refresh(index, touched=1)
        assert victim not in maintainer.selection
        assert maintainer.drops == 1
        assert maintainer.fills >= 1
        assert len(maintainer.selection) == BUDGET

    def test_staleness_triggers_full_resolve(self, repo, groups):
        index = _index(groups, repo)
        maintainer = StreamingMaintainer(
            index, BUDGET, staleness_fraction=0.05
        )
        assert maintainer.resolves == 1
        # 120 users * 0.05 = 6 touched users force a re-solve.
        maintainer.refresh(index, touched=10)
        assert maintainer.resolves == 2
        assert maintainer.touched_since_solve == 0
        fresh = select_from_index(index, BUDGET, method="matrix")
        assert maintainer.selection == fresh.selected

    def test_refresh_is_deterministic(self, repo, groups):
        def run():
            r, g = repo, groups
            index = _index(g, r)
            maintainer = StreamingMaintainer(
                index, BUDGET, staleness_fraction=10.0
            )
            rng = np.random.default_rng(5)
            for i in range(8):
                template = r.profile(sorted(r.user_ids)[0])
                victim = sorted(r.user_ids)[
                    int(rng.integers(len(r.user_ids)))
                ]
                delta = ProfileDelta(
                    upserts=(
                        UserProfile(f"churn{i}", dict(template.scores)),
                    ),
                    removals=frozenset({victim}),
                )
                r, g, index = _churn(r, g, delta)
                maintainer.refresh(index, touched=len(delta.touched))
            return maintainer.selection, maintainer.stats()

        first_sel, first_stats = run()
        second_sel, second_stats = run()
        assert first_sel == second_sel
        assert first_stats == second_stats


class TestQuality:
    def test_quality_floor_under_churn(self, repo, groups):
        """The bench acceptance criterion at test scale: maintained
        score stays within 5% of a from-scratch greedy every round."""
        index = _index(groups, repo)
        maintainer = StreamingMaintainer(
            index, BUDGET, staleness_fraction=10.0
        )
        rng = np.random.default_rng(3)
        alive = sorted(repo.user_ids)
        for i in range(15):
            template = repo.profile(alive[0])
            victim = alive.pop(int(rng.integers(len(alive))))
            new = UserProfile(f"q{i:03d}", dict(template.scores))
            alive.append(new.user_id)
            delta = ProfileDelta(
                upserts=(new,), removals=frozenset({victim})
            )
            repo, groups, index = _churn(repo, groups, delta)
            maintainer.refresh(index, touched=len(delta.touched))
            fresh = select_from_index(index, BUDGET, method="matrix")
            if fresh.score:
                assert maintainer.score() / fresh.score >= 0.95, i
