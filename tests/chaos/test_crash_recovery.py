"""Crash the durable tier at every syscall; recovery must never lose an ack.

``TestCrashEverywhere`` is the randomized crash-recovery property test
from the chaos harness: the canonical workload (appends, snapshots, a
same-seq re-snapshot, compaction, an epoch reset) is first run
fault-free to enumerate its shimmed syscalls, then re-run once per
syscall index with a simulated power loss at exactly that op.  Recovery
must yield an admissible oracle state and identical ``/select`` output
to a never-crashed instance — see :mod:`tests.chaos.harness`.

The regression classes pin the three historical crash-window bugs this
machinery was built to catch:

* ``write_snapshot`` staged payloads without fsyncing them (power loss
  after the pointer flip served empty/torn payloads);
* ``DurableRepositoryStore.reset`` truncated the WAL *before*
  snapshotting the new epoch (a crash in between resurrected the
  replaced population and dropped acked deltas);
* re-snapshot at an unchanged sequence deleted the live directory
  before renaming its replacement (a crash in between left ``CURRENT``
  dangling and recovery failed hard).
"""

import os

import numpy as np
import pytest

from repro.storage import (
    CrashFS,
    DurableRepositoryStore,
    FaultPlan,
    SimulatedCrash,
)
from repro.storage.snapshot import current_snapshot_path

from .harness import (
    base_repository,
    count_ops,
    default_workload,
    make_delta,
    oracle_states,
    run_with_crash,
    same_repository,
    select_response,
    verify_crash_point,
)

#: Environment knobs the CI chaos job drives: a pinned seed keeps the
#: property test reproducible; the fuzz test draws a fresh seed per run
#: unless CHAOS_SEED pins it.
_FUZZ_ITERATIONS = int(os.environ.get("CHAOS_ITERATIONS", "12"))


class TestCrashEverywhere:
    def test_crash_at_every_syscall_index(self, tmp_path_factory):
        steps = default_workload()
        total = count_ops(tmp_path_factory.mktemp("probe"), steps)
        assert total > 40  # the workload exercises a real syscall surface
        for crash_at in range(total):
            verify_crash_point(
                tmp_path_factory.mktemp(f"crash{crash_at:03d}"),
                steps,
                crash_at,
            )

    def test_randomized_fuzz(self, tmp_path_factory):
        """Torn-write sizes and partially-flushed tails drawn at random.

        Worst-case truncation (everything volatile gone) is covered
        exhaustively above; here power loss keeps a random amount of
        each file's unflushed suffix — both are admissible disk images
        and recovery must handle either.  CHAOS_SEED pins a failing run.
        """
        seed_env = os.environ.get("CHAOS_SEED")
        seed = (
            int(seed_env)
            if seed_env
            else int.from_bytes(os.urandom(4), "big")
        )
        rng = np.random.default_rng(seed)
        steps = default_workload()
        total = count_ops(tmp_path_factory.mktemp("probe"), steps)
        for iteration in range(_FUZZ_ITERATIONS):
            crash_at = int(rng.integers(0, total))
            try:
                verify_crash_point(
                    tmp_path_factory.mktemp(f"fuzz{iteration:03d}"),
                    steps,
                    crash_at,
                    rng=rng,
                    worst_case=False,
                )
            except AssertionError as exc:
                raise AssertionError(
                    f"fuzz failure (rerun with CHAOS_SEED={seed}): {exc}"
                ) from exc


def _ops_of_step(tmp_path, steps, target_step: int) -> range:
    """The shim op index range spanned by one workload step."""
    fs = CrashFS(FaultPlan())
    store = DurableRepositoryStore(tmp_path, fsync=True, fs=fs)
    bounds = []
    from .harness import _execute

    for step in steps:
        start = fs.op_count
        _execute(store, step)
        bounds.append(range(start, fs.op_count))
    store.close()
    return bounds[target_step]


class TestSnapshotFsyncRegression:
    """Bug 1: staged snapshot payloads must be durable before the rename.

    Crash at the very *last* syscall of a snapshot-bearing step: by
    then the pointer flip happened, so worst-case power loss keeps only
    fsynced bytes — recovery from the freshly-pointed snapshot must see
    the full payload, not page-cache remnants.
    """

    def test_payloads_survive_worst_case_loss_after_pointer_flip(
        self, tmp_path_factory
    ):
        steps = [("init", base_repository())]
        probe = tmp_path_factory.mktemp("probe")
        last_op = _ops_of_step(probe, steps, 0)[-1]
        work = tmp_path_factory.mktemp("work")
        run_with_crash(work, steps, last_op)
        recovered = DurableRepositoryStore(work, fsync=False)
        assert same_repository(recovered.repository, steps[0][1])
        recovered.close()


class TestResetOrderingRegression:
    """Bug 2: reset must snapshot the new epoch before truncating the WAL.

    With the old truncate-then-snapshot order, a crash in between
    recovered the *old* snapshot over an emptied log: the replaced
    population came back and every acked delta since the last snapshot
    was silently gone.  Now every crash point inside reset lands on
    either the full pre-reset state (deltas included) or the new epoch.
    """

    def test_every_crash_point_inside_reset(self, tmp_path_factory):
        replacement = base_repository(seed=31)
        steps = [
            ("init", base_repository()),
            ("delta", make_delta(0)),
            ("delta", make_delta(1)),
            ("reset", replacement),
        ]
        probe = tmp_path_factory.mktemp("probe")
        reset_ops = _ops_of_step(probe, steps, 3)
        states = oracle_states(steps)
        for crash_at in reset_ops:
            work = tmp_path_factory.mktemp(f"reset{crash_at:03d}")
            completed, _ = run_with_crash(work, steps, crash_at)
            assert completed == 3  # died inside the reset step
            recovered = DurableRepositoryStore(work, fsync=False)
            try:
                pre, post = states[3], states[4]
                ok = same_repository(
                    recovered.repository, pre
                ) or same_repository(recovered.repository, post)
                assert ok, (
                    f"crash at op {crash_at} inside reset recovered "
                    f"{len(recovered.repository)} users — neither the "
                    f"pre-reset state ({len(pre)}, acked deltas "
                    f"included) nor the new epoch ({len(post)})"
                )
            finally:
                recovered.close()


class TestResnapshotSwapRegression:
    """Bug 3: re-snapshot at the same seq must never delete-then-rename.

    The old path removed the live snapshot directory before renaming
    its replacement in; a crash between the two left ``CURRENT``
    dangling at a deleted directory and recovery refused to boot.  The
    fixed writer renames to a fresh ``.N``-suffixed name and flips the
    pointer afterwards, so some committed snapshot always survives.
    """

    def test_every_crash_point_inside_resnapshot(self, tmp_path_factory):
        repo = base_repository()
        steps = [("init", repo), ("snapshot",), ("snapshot",)]
        probe = tmp_path_factory.mktemp("probe")
        resnap_ops = _ops_of_step(probe, steps, 2)
        for crash_at in resnap_ops:
            work = tmp_path_factory.mktemp(f"resnap{crash_at:03d}")
            run_with_crash(work, steps, crash_at)
            recovered = DurableRepositoryStore(work, fsync=False)
            try:
                assert same_repository(recovered.repository, repo), (
                    f"crash at op {crash_at} during a same-seq "
                    f"re-snapshot lost the population"
                )
            finally:
                recovered.close()

    def test_resnapshot_never_reuses_the_live_name(self, tmp_path):
        # Each re-snapshot at the same seq renames into a name distinct
        # from the live directory (a pruned name may come back later —
        # by then its old directory is long gone, so no delete-then-
        # rename window ever opens on the snapshot being served).
        repo = base_repository()
        store = DurableRepositoryStore(tmp_path, fsync=False)
        names = []
        store.initialize(repo)
        names.append(current_snapshot_path(tmp_path).name)
        for _ in range(3):
            store.snapshot()
            names.append(current_snapshot_path(tmp_path).name)
        assert all(a != b for a, b in zip(names, names[1:]))
        assert names[1].endswith(".1")  # the suffix path actually ran
        store.close()

    def test_dangling_pointer_falls_back_to_newest_valid(self, tmp_path):
        repo = base_repository()
        store = DurableRepositoryStore(tmp_path, fsync=False)
        store.initialize(repo)
        store.close()
        pointer = tmp_path / "snapshots" / "CURRENT"
        pointer.write_text("snap-999999999999\n")  # legacy-style damage
        with pytest.warns(RuntimeWarning, match="falling back"):
            recovered = DurableRepositoryStore(tmp_path, fsync=False)
        assert same_repository(recovered.repository, repo)
        recovered.close()


class TestCompactionCrash:
    """Compaction dying between its snapshot and its WAL truncate must
    replay to the identical state (records <= snapshot seq are skipped)."""

    def test_every_crash_point_inside_compact(self, tmp_path_factory):
        steps = [
            ("init", base_repository()),
            ("delta", make_delta(0)),
            ("delta", make_delta(1)),
            ("compact",),
        ]
        probe = tmp_path_factory.mktemp("probe")
        compact_ops = _ops_of_step(probe, steps, 3)
        expected = oracle_states(steps)[-1]
        for crash_at in compact_ops:
            work = tmp_path_factory.mktemp(f"compact{crash_at:03d}")
            run_with_crash(work, steps, crash_at)
            recovered = DurableRepositoryStore(work, fsync=False)
            try:
                assert same_repository(recovered.repository, expected)
                assert select_response(recovered) == select_response(
                    expected
                )
            finally:
                recovered.close()
