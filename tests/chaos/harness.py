"""Crash-recovery harness for the durable tier.

The harness drives a fixed *workload* — a sequence of store operations
(initialize, delta appends, snapshots, compaction, epoch reset) — through
:class:`~repro.storage.CrashFS`, the fault-injecting filesystem shim.
One fault-free run enumerates every state-changing syscall the workload
performs; the property test then replays the workload once per syscall
index, "killing the process" (raising :class:`SimulatedCrash`) at that
exact op, simulating the power loss (:meth:`CrashFS.lose_volatile`
rewinds every file to its fsynced length), and recovering with a fresh
:class:`DurableRepositoryStore` on the surviving disk image.

Correctness oracle
------------------
Crashes are only allowed two outcomes per in-flight operation: it never
happened, or it fully happened.  So after a crash with ``k`` workload
steps acknowledged, the recovered repository must equal the oracle state
after step ``k`` (in-flight op lost) or after step ``k+1`` (in-flight op
committed before the crash point) — anything else means an acked delta
was lost, a torn write leaked, or a half-applied epoch swap surfaced.
On top of repository equality, the harness asserts ``/select`` parity:
a service booted from the recovered store must answer exactly like a
never-crashed service holding the matching oracle repository.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.profiles import UserProfile, UserRepository
from repro.core.updates import ProfileDelta, apply_delta_to_repository
from repro.datasets.synth import generate_profile_repository
from repro.service.app import PodiumService
from repro.storage import (
    CrashFS,
    DurableRepositoryStore,
    FaultPlan,
    SimulatedCrash,
)

BUDGET = 3

#: Step kinds the workload runner understands.
_KINDS = ("init", "delta", "snapshot", "compact", "reset")


def base_repository(seed: int = 29) -> UserRepository:
    """Small but non-trivial population (keeps per-crash-point cost low)."""
    return generate_profile_repository(
        n_users=24, n_properties=10, mean_profile_size=5.0, seed=seed
    )


def make_delta(n: int) -> ProfileDelta:
    """A deterministic, state-independent delta (new user per call)."""
    return ProfileDelta(
        upserts=(
            UserProfile(
                f"chaos{n:03d}",
                {"p0": 0.1 + 0.05 * n, "p1": 0.9 - 0.05 * n},
            ),
        ),
        removals=frozenset(),
    )


def default_workload() -> list[tuple]:
    """The canonical chaos workload: every mutation the store offers.

    Covers append (WAL write + fsync), snapshot (staged files, pointer
    flip, pruning), re-snapshot at an unchanged sequence (the ``.N``
    suffix path), compaction (snapshot + WAL truncate) and an epoch
    reset (snapshot-then-truncate ordering) with appends after each.
    """
    return [
        ("init", base_repository()),
        ("delta", make_delta(0)),
        ("delta", make_delta(1)),
        ("snapshot",),
        ("snapshot",),  # same seq: exercises the .N re-snapshot path
        ("delta", make_delta(2)),
        ("compact",),
        ("delta", make_delta(3)),
        ("reset", base_repository(seed=31)),
        ("delta", make_delta(4)),
    ]


def oracle_states(steps: list[tuple]) -> list[UserRepository]:
    """Repository after each workload prefix; index k = k steps done."""
    repo = UserRepository(())
    states = [repo]
    for step in steps:
        kind = step[0]
        if kind in ("init", "reset"):
            repo = step[1]
        elif kind == "delta":
            repo = apply_delta_to_repository(repo, step[1])
        elif kind not in _KINDS:
            raise ValueError(f"unknown workload step {kind!r}")
        states.append(repo)
    return states


def _execute(store: DurableRepositoryStore, step: tuple) -> None:
    kind = step[0]
    if kind == "init":
        store.initialize(step[1])
    elif kind == "delta":
        store.append_delta(step[1])
    elif kind == "snapshot":
        store.snapshot()
    elif kind == "compact":
        store.compact()
    elif kind == "reset":
        store.reset(step[1])
    else:
        raise ValueError(f"unknown workload step {kind!r}")


def count_ops(tmp_path: Path, steps: list[tuple]) -> int:
    """Fault-free run: how many shimmed syscalls the workload performs."""
    fs = CrashFS(FaultPlan())
    store = DurableRepositoryStore(tmp_path, fsync=True, fs=fs)
    for step in steps:
        _execute(store, step)
    ops = fs.op_count  # before close: the crash runs never close cleanly
    store.close()
    return ops


def run_with_crash(
    tmp_path: Path,
    steps: list[tuple],
    crash_at: int,
    rng=None,
    worst_case: bool = True,
) -> tuple[int, CrashFS]:
    """Run the workload, dying at syscall ``crash_at``; power-loss the disk.

    Returns ``(completed_steps, fs)``.  The store's file descriptor is
    released *without* flushing (the process died), then every file is
    rewound to its durable length — what a reboot would find.
    """
    fs = CrashFS(FaultPlan(crash_at=crash_at), rng=rng)
    completed = 0
    store = None
    try:
        store = DurableRepositoryStore(tmp_path, fsync=True, fs=fs)
        for step in steps:
            _execute(store, step)
            completed += 1
    except SimulatedCrash:
        pass
    else:
        raise AssertionError(
            f"crash_at={crash_at} never fired ({fs.op_count} ops total)"
        )
    finally:
        if store is not None:
            # A dead process closes nothing gracefully: drop the fd
            # without the flush/fsync a clean close would perform.
            store.release_after_fork()
    fs.lose_volatile(worst_case=worst_case)
    return completed, fs


def select_response(source) -> dict | None:
    """``/select`` document for a store or a bare repository.

    ``None`` when the source holds no users (a crash before the first
    initialize completes legitimately recovers an empty store).
    """
    if isinstance(source, DurableRepositoryStore):
        if not len(source.repository):
            return None
        service = PodiumService(store=source)
        service.restore_artifacts()
    else:
        if not len(source):
            return None
        service = PodiumService(repository=source)
    return service.select("default", budget=BUDGET, explain=False)


def same_repository(a: UserRepository, b: UserRepository) -> bool:
    if sorted(a.user_ids) != sorted(b.user_ids):
        return False
    return all(
        a.profile(u).scores == b.profile(u).scores for u in a.user_ids
    )


def verify_crash_point(
    tmp_path: Path,
    steps: list[tuple],
    crash_at: int,
    rng=None,
    worst_case: bool = True,
) -> None:
    """Crash at one syscall index and assert the recovery contract."""
    completed, _ = run_with_crash(
        tmp_path, steps, crash_at, rng=rng, worst_case=worst_case
    )
    states = oracle_states(steps)
    admissible = [states[completed]]
    if completed + 1 < len(states):
        admissible.append(states[completed + 1])

    recovered = DurableRepositoryStore(tmp_path, fsync=False)
    try:
        matches = [
            s for s in admissible if same_repository(recovered.repository, s)
        ]
        assert matches, (
            f"crash at op {crash_at} (after {completed} acked steps): "
            f"recovered {len(recovered.repository)} users matching no "
            f"admissible state "
            f"(admissible sizes: {[len(s) for s in admissible]})"
        )
        # /select parity with a never-crashed instance on the same state.
        assert select_response(recovered) == select_response(matches[0]), (
            f"crash at op {crash_at}: recovered store answers /select "
            f"differently from a never-crashed instance"
        )
    finally:
        recovered.close()
