"""Self-tests of the fault-injection shim (the harness's foundation).

If the power-loss model were wrong — volatile bytes surviving, fsyncs
not promoting, renames losing tracking — every chaos result downstream
would be noise.  These tests pin the model, including the negative
control: with ``drop_fsync`` (a lying disk) the shim must *detect* a
snapshot whose payloads never truly reached the platter, which is
exactly how the harness would have caught the historical missing-fsync
bug in ``write_snapshot``.
"""

import errno

import pytest

from repro.core.errors import StorageError
from repro.storage import (
    CrashFS,
    DurableRepositoryStore,
    FaultPlan,
    SimulatedCrash,
    scan_wal,
)
from repro.storage.wal import WriteAheadLog

from .harness import base_repository, same_repository


class TestPowerLossModel:
    def test_unfsynced_bytes_are_lost(self, tmp_path):
        fs = CrashFS(FaultPlan())
        target = tmp_path / "f"
        fs.write_bytes(target, b"hello")
        fs.lose_volatile()
        assert target.read_bytes() == b""

    def test_fsynced_bytes_survive(self, tmp_path):
        fs = CrashFS(FaultPlan())
        target = tmp_path / "f"
        fs.write_bytes(target, b"hello")
        fs.fsync_path(target)
        fs.write_bytes(tmp_path / "g", b"gone")
        fs.lose_volatile()
        assert target.read_bytes() == b"hello"
        assert (tmp_path / "g").read_bytes() == b""

    def test_preexisting_content_counts_as_durable(self, tmp_path):
        target = tmp_path / "f"
        target.write_bytes(b"old")
        fs = CrashFS(FaultPlan())
        with open(target, "ab") as handle:
            fs.file_write(handle, b"new")
        fs.lose_volatile()
        assert target.read_bytes() == b"old"

    def test_handle_fsync_promotes(self, tmp_path):
        target = tmp_path / "f"
        fs = CrashFS(FaultPlan())
        with open(target, "ab") as handle:
            fs.file_write(handle, b"abc")
            fs.file_fsync(handle)
            fs.file_write(handle, b"def")
        fs.lose_volatile()
        assert target.read_bytes() == b"abc"

    def test_drop_fsync_models_a_lying_disk(self, tmp_path):
        fs = CrashFS(FaultPlan(drop_fsync=True))
        target = tmp_path / "f"
        fs.write_bytes(target, b"hello")
        fs.fsync_path(target)  # returns success, promotes nothing
        fs.lose_volatile()
        assert target.read_bytes() == b""

    def test_rename_moves_tracking(self, tmp_path):
        fs = CrashFS(FaultPlan())
        src = tmp_path / "stage"
        src.mkdir()
        fs.write_bytes(src / "f", b"hello")
        fs.fsync_path(src / "f")
        fs.write_bytes(src / "g", b"volatile")
        fs.replace(src, tmp_path / "final")
        fs.lose_volatile()
        assert (tmp_path / "final" / "f").read_bytes() == b"hello"
        assert (tmp_path / "final" / "g").read_bytes() == b""

    def test_completed_truncate_is_durable(self, tmp_path):
        target = tmp_path / "f"
        target.write_bytes(b"0123456789")
        fs = CrashFS(FaultPlan())
        fs.truncate_file(target, 4)
        fs.lose_volatile()
        assert target.read_bytes() == b"0123"

    def test_random_keep_stays_in_admissible_band(self, tmp_path):
        np = pytest.importorskip("numpy")
        fs = CrashFS(FaultPlan(), rng=np.random.default_rng(3))
        target = tmp_path / "f"
        with open(target, "ab") as handle:
            fs.file_write(handle, b"abcd")
            fs.file_fsync(handle)
            fs.file_write(handle, b"efgh")
        fs.lose_volatile(worst_case=False)
        kept = target.read_bytes()
        assert kept.startswith(b"abcd") and len(kept) <= 8


class TestInjection:
    def test_crash_fires_at_exact_index(self, tmp_path):
        fs = CrashFS(FaultPlan(crash_at=1))
        fs.write_bytes(tmp_path / "a", b"x")  # op 0
        with pytest.raises(SimulatedCrash):
            fs.write_bytes(tmp_path / "b", b"y")  # op 1
        assert fs.ops[1].startswith("write_bytes:")

    def test_crash_is_not_an_exception(self):
        # Production `except Exception` boundaries must never swallow a
        # simulated death — otherwise crash points inside such blocks
        # would silently test nothing.
        assert not issubclass(SimulatedCrash, Exception)

    def test_errno_injection_is_a_survivable_oserror(self, tmp_path):
        fs = CrashFS(FaultPlan(errno_at=0))
        with pytest.raises(OSError) as info:
            fs.fsync_dir(tmp_path)
        assert info.value.errno == errno.ENOSPC
        fs.fsync_dir(tmp_path)  # the next op proceeds normally

    def test_torn_write_leaves_a_prefix(self, tmp_path):
        fs = CrashFS(FaultPlan(crash_at=0, partial_writes=True))
        target = tmp_path / "f"
        with open(target, "ab") as handle:
            with pytest.raises(SimulatedCrash):
                fs.file_write(handle, b"0123456789")
        torn = target.read_bytes()
        assert 0 < len(torn) < 10
        assert b"0123456789".startswith(torn)


class TestHarnessWouldCatchMissingFsync:
    """Negative control: the dropped-fsync detection the ISSUE demands.

    The snapshot writer fsyncs every staged file before the rename.  On
    a lying disk (``drop_fsync``) those fsyncs are no-ops, so after
    power loss the staged payloads are empty — and recovery must *not*
    silently return an empty population: the pointer flip is durable
    (directory metadata) while the payload is gone, which the loader
    reports as corruption.  This proves the harness distinguishes
    "fsync issued" from "fsync effective" — the pre-fix writer (which
    issued no payload fsyncs at all) fails the dropped-fsync run and the
    honest-disk run identically.
    """

    def test_lying_disk_snapshot_detected(self, tmp_path):
        fs = CrashFS(FaultPlan(drop_fsync=True))
        store = DurableRepositoryStore(tmp_path, fsync=True, fs=fs)
        repo = base_repository()
        store.initialize(repo)
        store.release_after_fork()
        fs.lose_volatile()
        with pytest.raises(StorageError, match="profiles|manifest"):
            DurableRepositoryStore(tmp_path, fsync=False)

    def test_honest_disk_snapshot_survives(self, tmp_path):
        fs = CrashFS(FaultPlan())
        store = DurableRepositoryStore(tmp_path, fsync=True, fs=fs)
        repo = base_repository()
        store.initialize(repo)
        store.release_after_fork()
        fs.lose_volatile()
        recovered = DurableRepositoryStore(tmp_path, fsync=False)
        assert same_repository(recovered.repository, repo)
        recovered.close()

    def test_lying_disk_wal_append_lost(self, tmp_path):
        wal_path = tmp_path / "wal.log"
        fs = CrashFS(FaultPlan(drop_fsync=True))
        wal = WriteAheadLog(wal_path, fsync=True, fs=fs)
        wal.append({"kind": "delta", "delta": {}})
        fs.lose_volatile()
        assert scan_wal(wal_path).last_seq == 0
