"""Index archives inside snapshots crash under the shim like any file.

``save_index_npz`` historically wrote straight to disk with
``np.savez`` — the one snapshot payload the fault shim could not see,
documented as a blind spot in :mod:`repro.storage.faults`.  It now
accepts ``fs=`` and ``write_snapshot`` routes staged index archives
through :meth:`FilesystemShim.write_bytes`, so these tests can (a)
prove the op actually appears in the shim stream, (b) crash at every
syscall of an index-bearing snapshot and require recovery to never
serve a torn index, and (c) surface injected ``ENOSPC`` as a regular
``OSError`` the caller can handle.
"""

import errno

import numpy as np
import pytest

from repro.core import (
    GroupingConfig,
    build_instance,
    build_simple_groups,
    instance_index,
)
from repro.core.persistence import load_index_npz, save_index_npz
from repro.core.weights import LBSWeights, SingleCoverage
from repro.storage import (
    CrashFS,
    DurableRepositoryStore,
    FaultPlan,
    SimulatedCrash,
)
from repro.storage.snapshot import (
    SnapshotArtifact,
    current_snapshot_path,
    load_snapshot,
)

from .harness import base_repository


def _artifact(repo):
    groups = build_simple_groups(repo, GroupingConfig())
    instance = build_instance(
        repo,
        budget=3,
        groups=groups,
        weight_scheme=LBSWeights(),
        coverage_scheme=SingleCoverage(),
    )
    index = instance_index(instance)
    assert index.vectorizable
    return SnapshotArtifact(
        config={"name": "default"}, groups=groups, index=index
    )


def _same_index(a, b) -> bool:
    return (
        tuple(a.users) == tuple(b.users)
        and a.group_keys == b.group_keys
        and np.array_equal(a.u_indptr, b.u_indptr)
        and np.array_equal(a.u_indices, b.u_indices)
        and np.array_equal(a.g_indptr, b.g_indptr)
        and np.array_equal(a.g_indices, b.g_indices)
        and np.array_equal(a.cov, b.cov)
        and np.array_equal(a.wei, b.wei)
        and np.array_equal(a.initial_gains, b.initial_gains)
    )


class TestShimRouting:
    def test_index_write_appears_in_op_stream(self, tmp_path):
        repo = base_repository()
        fs = CrashFS(FaultPlan())
        store = DurableRepositoryStore(tmp_path, fsync=True, fs=fs)
        store.initialize(repo)
        store.set_artifacts({"default": _artifact(repo)})
        store.snapshot()
        store.close()
        index_writes = [
            op for op in fs.ops if "write_bytes" in op and "index-" in op
        ]
        assert index_writes, (
            "the staged index archive never went through the shim: "
            f"{fs.ops}"
        )

    def test_shimmed_write_roundtrips(self, tmp_path):
        repo = base_repository()
        artifact = _artifact(repo)
        path = tmp_path / "index.npz"
        save_index_npz(artifact.index, path, fs=CrashFS(FaultPlan()))
        assert _same_index(load_index_npz(path), artifact.index)

    def test_injected_enospc_surfaces_as_oserror(self, tmp_path):
        repo = base_repository()
        artifact = _artifact(repo)
        path = tmp_path / "index.npz"
        fs = CrashFS(FaultPlan(errno_at=0, errno_code=errno.ENOSPC))
        with pytest.raises(OSError) as excinfo:
            save_index_npz(artifact.index, path, fs=fs)
        assert excinfo.value.errno == errno.ENOSPC
        # The torn partial file must not pass verification.
        if path.exists() and path.stat().st_size:
            with pytest.raises(Exception):
                load_index_npz(path)


class TestIndexSnapshotCrashSweep:
    def test_crash_at_every_op_of_an_index_bearing_snapshot(
        self, tmp_path_factory
    ):
        """Power loss anywhere inside the snapshot step must leave a
        bootable store whose visible snapshot — old or new — loads
        cleanly; when the new one is visible its index must be intact
        and byte-equal to what was staged."""
        repo = base_repository()
        artifact = _artifact(repo)

        # Fault-free probe: op index range of the snapshot step.
        probe = tmp_path_factory.mktemp("probe")
        fs = CrashFS(FaultPlan())
        store = DurableRepositoryStore(probe, fsync=True, fs=fs)
        store.initialize(repo)
        store.set_artifacts({"default": artifact})
        start = fs.op_count
        store.snapshot()
        snapshot_ops = range(start, fs.op_count)
        store.close()
        assert any(
            "index-" in fs.ops[i] for i in snapshot_ops
        ), "probe run never staged the index archive"

        for crash_at in snapshot_ops:
            work = tmp_path_factory.mktemp(f"crash{crash_at:03d}")
            crash_fs = CrashFS(FaultPlan(crash_at=crash_at))
            store = DurableRepositoryStore(work, fsync=True, fs=crash_fs)
            try:
                store.initialize(repo)
                store.set_artifacts({"default": artifact})
                with pytest.raises(SimulatedCrash):
                    store.snapshot()
            finally:
                store.release_after_fork()
            crash_fs.lose_volatile()

            current = current_snapshot_path(work)
            assert current is not None, (
                f"crash at op {crash_at} left no usable snapshot"
            )
            state = load_snapshot(current)  # must never raise on a torn file
            recovered = state.artifacts.get("default")
            if recovered is not None and recovered.index is not None:
                assert _same_index(recovered.index, artifact.index), (
                    f"crash at op {crash_at}: served index differs from "
                    f"the staged one"
                )
            # The store itself must boot on the surviving image.
            booted = DurableRepositoryStore(work, fsync=False)
            assert sorted(booted.repository.user_ids) == sorted(
                repo.user_ids
            )
            booted.close()
