"""Chaos tests: crash/fault injection against the durable tier."""
