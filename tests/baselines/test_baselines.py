"""Unit tests for the selection baselines (paper §8.3)."""

import numpy as np
import pytest

from repro.baselines import (
    ClusteringSelector,
    DistanceSelector,
    OptimalSelector,
    PodiumSelector,
    RandomSelector,
    jaccard_distance,
    kmeans,
    mean_pairwise_intersection,
)
from repro.core import InvalidBudgetError, PodiumError, subset_score


class TestPodiumSelector:
    def test_matches_greedy(self, table2_repo, table2_instance):
        selected = PodiumSelector().select(table2_repo, table2_instance, 2)
        assert set(selected) == {"Alice", "Eve"}

    def test_eager_and_lazy_same_score(self, small_profile_repo, small_instance):
        eager = PodiumSelector(method="eager").select(
            small_profile_repo, small_instance, 5
        )
        lazy = PodiumSelector(method="lazy").select(
            small_profile_repo, small_instance, 5
        )
        assert subset_score(small_instance, eager) == subset_score(
            small_instance, lazy
        )


class TestOptimalSelector:
    def test_optimal_on_running_example(self, table2_repo, table2_instance):
        selected = OptimalSelector().select(table2_repo, table2_instance, 2)
        assert subset_score(table2_instance, selected) == 17


class TestRandomSelector:
    def test_size_and_uniqueness(self, small_profile_repo, small_instance, rng):
        picked = RandomSelector().select(
            small_profile_repo, small_instance, 7, rng=rng
        )
        assert len(picked) == 7
        assert len(set(picked)) == 7

    def test_budget_capped_at_population(self, table2_repo, table2_instance, rng):
        picked = RandomSelector().select(table2_repo, table2_instance, 99, rng=rng)
        assert sorted(picked) == sorted(table2_repo.user_ids)

    def test_seeded_reproducibility(self, small_profile_repo, small_instance):
        a = RandomSelector().select(
            small_profile_repo, small_instance, 5, rng=np.random.default_rng(4)
        )
        b = RandomSelector().select(
            small_profile_repo, small_instance, 5, rng=np.random.default_rng(4)
        )
        assert a == b

    def test_bad_budget(self, table2_repo, table2_instance):
        with pytest.raises(InvalidBudgetError):
            RandomSelector().select(table2_repo, table2_instance, 0)


class TestKMeans:
    def test_recovers_two_blobs(self, rng):
        data = np.vstack(
            [
                rng.normal(0.0, 0.05, (30, 2)),
                rng.normal(1.0, 0.05, (30, 2)),
            ]
        )
        result = kmeans(data, 2, rng=rng)
        labels_first = set(result.labels[:30])
        labels_second = set(result.labels[30:])
        assert len(labels_first) == 1
        assert len(labels_second) == 1
        assert labels_first != labels_second

    def test_inertia_decreases_with_k(self, rng):
        data = rng.random((60, 3))
        inertia1 = kmeans(data, 1, rng=np.random.default_rng(0)).inertia
        inertia8 = kmeans(data, 8, rng=np.random.default_rng(0)).inertia
        assert inertia8 < inertia1

    def test_k_equals_n_zero_inertia(self, rng):
        data = rng.random((6, 2))
        result = kmeans(data, 6, rng=rng)
        assert result.inertia == pytest.approx(0.0, abs=1e-9)

    def test_duplicate_points_ok(self, rng):
        data = np.zeros((10, 2))
        result = kmeans(data, 3, rng=rng)
        assert result.inertia == pytest.approx(0.0)

    def test_degenerate_init_fills_distinct_centers(self, rng):
        # When D² sampling collapses (all points coincide with the chosen
        # centers), the remaining centers are resampled as *distinct*
        # points, not one point repeated k - c times.
        from repro.baselines.clustering import _plus_plus_init

        data = np.vstack([np.zeros((8, 2)), np.full((4, 2), 3.0)])
        mixed_fill = False
        for seed in range(10):
            centers = _plus_plus_init(data, 4, np.random.default_rng(seed))
            assert len(centers) == 4
            assert len({tuple(c) for c in centers}) >= 2
            mixed_fill = mixed_fill or tuple(centers[2]) != tuple(centers[3])
        # The old fallback copied ONE resampled point into every
        # remaining slot, so centers[2] == centers[3] for every seed;
        # without-replacement resampling yields mixed fills.
        assert mixed_fill

    def test_bad_k(self, rng):
        with pytest.raises(InvalidBudgetError):
            kmeans(np.zeros((3, 2)), 4, rng=rng)


class TestClusteringSelector:
    def test_selects_distinct_representatives(
        self, small_profile_repo, small_instance, rng
    ):
        picked = ClusteringSelector().select(
            small_profile_repo, small_instance, 6, rng=rng
        )
        assert len(picked) == len(set(picked))
        assert 1 <= len(picked) <= 6

    def test_representative_is_near_mean(self, rng):
        """On two well-separated blobs, one pick comes from each blob."""
        from repro.core import UserProfile, UserRepository, build_instance

        profiles = []
        for i in range(10):
            profiles.append(UserProfile(f"lo{i}", {"p": 0.05 + 0.001 * i}))
        for i in range(10):
            profiles.append(UserProfile(f"hi{i}", {"p": 0.9 + 0.001 * i}))
        repo = UserRepository(profiles)
        instance = build_instance(repo, budget=2)
        picked = ClusteringSelector().select(repo, instance, 2, rng=rng)
        assert len(picked) == 2
        kinds = {p[:2] for p in picked}
        assert kinds == {"lo", "hi"}


class TestDistanceSelector:
    def test_jaccard_distance(self):
        a = frozenset({"x", "y"})
        b = frozenset({"y", "z"})
        assert jaccard_distance(a, b) == pytest.approx(1 - 1 / 3)
        assert jaccard_distance(a, a) == 0.0
        assert jaccard_distance(frozenset(), frozenset()) == 0.0

    def test_invalid_objective(self):
        with pytest.raises(PodiumError):
            DistanceSelector(objective="avg")

    def test_prefers_non_overlapping_users(self, table2_repo, table2_instance):
        picked = DistanceSelector().select(table2_repo, table2_instance, 2)
        props = [table2_repo.profile(u).properties for u in picked]
        # Bob shares no property values' groups with Alice; the dispersion
        # greedy must avoid picking the Alice/David pair (overlap 2).
        overlap = len(props[0] & props[1])
        assert overlap <= 4

    def test_deterministic_without_rng(self, small_profile_repo, small_instance):
        a = DistanceSelector().select(small_profile_repo, small_instance, 5)
        b = DistanceSelector().select(small_profile_repo, small_instance, 5)
        assert a == b

    def test_min_objective_runs(self, small_profile_repo, small_instance):
        picked = DistanceSelector(objective="min").select(
            small_profile_repo, small_instance, 5
        )
        assert len(picked) == 5

    def test_lower_intersection_than_podium(self, ta_repository):
        """§8.4: distance-based pairwise property intersection is far
        below Podium's."""
        from repro.core import GroupingConfig, build_instance, build_simple_groups

        groups = build_simple_groups(ta_repository, GroupingConfig(min_support=3))
        instance = build_instance(ta_repository, 8, groups=groups)
        podium = PodiumSelector().select(ta_repository, instance, 8)
        distance = DistanceSelector().select(ta_repository, instance, 8)
        assert mean_pairwise_intersection(
            ta_repository, distance
        ) < mean_pairwise_intersection(ta_repository, podium)

    def test_mean_pairwise_intersection_small_inputs(self, table2_repo):
        assert mean_pairwise_intersection(table2_repo, []) == 0.0
        assert mean_pairwise_intersection(table2_repo, ["Alice"]) == 0.0
        value = mean_pairwise_intersection(table2_repo, ["Alice", "David"])
        assert value == 3.0  # livesIn Tokyo, avgRating/visitFreq Mexican
