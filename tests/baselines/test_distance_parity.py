"""Distance-baseline parity sweep: vector == legacy, both objectives.

The vectorized :class:`~repro.baselines.distance.DistanceSelector`
promises byte-identical selections to the pure-Python legacy loop — the
incidence-matrix arithmetic performs the same IEEE-754 operations in the
same per-candidate order, so even seeded RNG tie-breaks resolve
identically (mirroring ``tests/core/test_backend_parity.py`` for the
greedy backends).
"""

import numpy as np
import pytest

from repro.baselines.distance import (
    DistanceSelector,
    _mean_pairwise_intersection_python,
    mean_pairwise_intersection,
)
from repro.core import GroupingConfig, build_instance, build_simple_groups
from repro.core.errors import PodiumError
from repro.core.profiles import UserProfile, UserRepository
from repro.datasets.synth import generate_profile_repository

OBJECTIVES = ("sum", "min")


def _sweep_repo(seed, n_users=60):
    repo = generate_profile_repository(
        n_users=n_users, n_properties=30, mean_profile_size=10.0, seed=seed
    )
    groups = build_simple_groups(repo, GroupingConfig())
    instance = build_instance(repo, budget=6, groups=groups)
    return repo, instance


class TestDistanceParity:
    @pytest.mark.parametrize("objective", OBJECTIVES)
    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_deterministic_selections_identical(self, objective, seed):
        repo, instance = _sweep_repo(seed)
        vector = DistanceSelector(objective).select(repo, instance, 6)
        legacy = DistanceSelector(objective, implementation="legacy").select(
            repo, instance, 6
        )
        assert vector == legacy

    @pytest.mark.parametrize("objective", OBJECTIVES)
    @pytest.mark.parametrize("rng_seed", (0, 7, 42))
    def test_seeded_rng_tie_breaks_identical(self, objective, rng_seed):
        repo, instance = _sweep_repo(seed=3)
        vector = DistanceSelector(objective).select(
            repo, instance, 6, rng=np.random.default_rng(rng_seed)
        )
        legacy = DistanceSelector(objective, implementation="legacy").select(
            repo, instance, 6, rng=np.random.default_rng(rng_seed)
        )
        assert vector == legacy

    @pytest.mark.parametrize("objective", OBJECTIVES)
    def test_duplicate_profiles_force_ties(self, objective):
        # Many identical profiles make every step a tie: the regime where
        # an ordering mismatch between the implementations would surface.
        repo = UserRepository(
            [UserProfile(f"u{i}", {"a": 0.5, "b": 0.5}) for i in range(12)]
            + [UserProfile(f"v{i}", {"c": 1.0}) for i in range(4)]
        )
        groups = build_simple_groups(repo, GroupingConfig())
        instance = build_instance(repo, budget=5, groups=groups)
        for rng_seed in (0, 1, 2):
            vector = DistanceSelector(objective).select(
                repo, instance, 5, rng=np.random.default_rng(rng_seed)
            )
            legacy = DistanceSelector(
                objective, implementation="legacy"
            ).select(repo, instance, 5, rng=np.random.default_rng(rng_seed))
            assert vector == legacy

    def test_invalid_arguments_rejected(self):
        with pytest.raises(PodiumError):
            DistanceSelector("max")
        with pytest.raises(PodiumError):
            DistanceSelector(implementation="numba")


class TestMeanPairwiseIntersectionParity:
    @pytest.mark.parametrize("seed", (0, 1))
    def test_matches_python_oracle(self, seed):
        repo, _ = _sweep_repo(seed, n_users=40)
        users = repo.user_ids[:15]
        assert mean_pairwise_intersection(
            repo, users
        ) == _mean_pairwise_intersection_python(repo, users)

    def test_fewer_than_two_users(self):
        repo, _ = _sweep_repo(0, n_users=10)
        assert mean_pairwise_intersection(repo, []) == 0.0
        assert mean_pairwise_intersection(repo, repo.user_ids[:1]) == 0.0
