"""Unit tests for the stratified-sampling baseline (paper §2 practice)."""

import numpy as np
import pytest

from repro.baselines import StratifiedSelector, proportional_apportionment
from repro.core import (
    InvalidBudgetError,
    UserProfile,
    UserRepository,
    build_instance,
)


class TestApportionment:
    def test_exact_proportions(self):
        assert proportional_apportionment([60, 40], 10) == [6, 4]

    def test_largest_remainder_breaks_fractions(self):
        # Quotas 3.33 / 3.33 / 3.33 -> one stratum gets the extra seat.
        seats = proportional_apportionment([10, 10, 10], 10)
        assert sum(seats) == 10
        assert sorted(seats) == [3, 3, 4]

    def test_seats_capped_by_stratum_size(self):
        seats = proportional_apportionment([1, 99], 10)
        assert seats[0] <= 1
        assert sum(seats) == 10

    def test_budget_exceeding_population(self):
        assert proportional_apportionment([2, 3], 99) == [2, 3]

    def test_empty_strata_get_nothing(self):
        assert proportional_apportionment([0, 5], 4) == [0, 4]

    def test_zero_budget(self):
        assert proportional_apportionment([5, 5], 0) == [0, 0]

    def test_negative_budget_rejected(self):
        with pytest.raises(InvalidBudgetError):
            proportional_apportionment([5], -1)


@pytest.fixture()
def skewed_repo():
    """80 low scorers, 20 high scorers on the stratification variable."""
    profiles = [
        UserProfile(f"lo{i}", {"activity": 0.1 + 0.001 * i}) for i in range(80)
    ] + [
        UserProfile(f"hi{i}", {"activity": 0.9 + 0.0005 * i}) for i in range(20)
    ]
    return UserRepository(profiles)


class TestStratifiedSelector:
    def test_respects_budget_and_uniqueness(self, skewed_repo, rng):
        instance = build_instance(skewed_repo, 10)
        picked = StratifiedSelector().select(skewed_repo, instance, 10, rng)
        assert len(picked) == 10
        assert len(set(picked)) == 10

    def test_proportional_across_strata(self, skewed_repo):
        instance = build_instance(skewed_repo, 10)
        counts = {"lo": 0, "hi": 0}
        for seed in range(10):
            picked = StratifiedSelector(strata_buckets=2).select(
                skewed_repo, instance, 10, np.random.default_rng(seed)
            )
            for user in picked:
                counts[user[:2]] += 1
        # 80/20 population -> roughly 8/2 per draw.
        assert counts["lo"] > 3 * counts["hi"]
        assert counts["hi"] > 0

    def test_unknown_stratum_represented(self):
        profiles = [
            UserProfile(f"k{i}", {"activity": 0.5}) for i in range(6)
        ] + [UserProfile(f"u{i}", {}) for i in range(6)]
        repo = UserRepository(profiles)
        instance = build_instance(
            repo.filter(lambda p: len(p) > 0), 4
        )
        picked = StratifiedSelector().select(
            repo, instance, 4, np.random.default_rng(1)
        )
        kinds = {u[0] for u in picked}
        assert kinds == {"k", "u"}

    def test_empty_property_space(self):
        repo = UserRepository([UserProfile(f"u{i}", {}) for i in range(5)])
        selector = StratifiedSelector()
        # No properties at all: one big stratum, uniform sampling.
        strata = selector._stratify(repo)
        assert len(strata) == 1
        assert len(strata[0]) == 5

    def test_bad_budget(self, skewed_repo):
        instance = build_instance(skewed_repo, 2)
        with pytest.raises(InvalidBudgetError):
            StratifiedSelector().select(skewed_repo, instance, 0)
