"""Unit tests for Boolean implication mining (AMIE-lite, paper §3.1)."""

import pytest

from repro.core import UserProfile, UserRepository
from repro.taxonomy import MinedImplication, mine_implications, mine_rule


@pytest.fixture()
def repo():
    """Everyone in Brooklyn is in NYC-area; not vice versa; plus noise."""
    profiles = []
    for i in range(10):
        scores = {"livesIn Brooklyn": 1.0, "livesIn NYC-area": 1.0}
        if i % 2 == 0:
            scores["likes Pizza"] = 1.0
        profiles.append(UserProfile(f"b{i}", scores))
    for i in range(5):
        profiles.append(UserProfile(f"n{i}", {"livesIn NYC-area": 1.0}))
    profiles.append(UserProfile("x", {"score prop": 0.5}))
    return UserRepository(profiles)


class TestMineImplications:
    def test_finds_brooklyn_implies_nyc(self, repo):
        mined = mine_implications(repo, min_support=3, min_confidence=0.9)
        pairs = {(m.antecedent, m.consequent) for m in mined}
        assert ("livesIn Brooklyn", "livesIn NYC-area") in pairs

    def test_reverse_direction_below_confidence(self, repo):
        mined = mine_implications(repo, min_support=3, min_confidence=0.9)
        pairs = {(m.antecedent, m.consequent) for m in mined}
        # NYC-area => Brooklyn holds for only 10/15 users.
        assert ("livesIn NYC-area", "livesIn Brooklyn") not in pairs

    def test_confidence_and_support_values(self, repo):
        mined = mine_implications(repo, min_support=3, min_confidence=0.9)
        rule = next(
            m
            for m in mined
            if (m.antecedent, m.consequent)
            == ("livesIn Brooklyn", "livesIn NYC-area")
        )
        assert rule.support == 10
        assert rule.confidence == 1.0

    def test_min_support_filters(self, repo):
        mined = mine_implications(repo, min_support=11, min_confidence=0.5)
        assert mined == []

    def test_non_boolean_properties_excluded(self, repo):
        mined = mine_implications(repo, min_support=1, min_confidence=0.1)
        labels = {m.antecedent for m in mined} | {m.consequent for m in mined}
        assert "score prop" not in labels

    def test_max_rules_truncates(self, repo):
        mined = mine_implications(
            repo, min_support=3, min_confidence=0.5, max_rules=1
        )
        assert len(mined) == 1

    def test_sorted_by_confidence_then_support(self, repo):
        mined = mine_implications(repo, min_support=3, min_confidence=0.5)
        ranks = [(m.confidence, m.support) for m in mined]
        assert ranks == sorted(ranks, reverse=True)

    def test_str_representation(self):
        imp = MinedImplication("a", "b", 5, 0.95)
        assert "a => b" in str(imp)


class TestImplicationRule:
    def test_rule_infers_consequents(self, repo):
        rule = mine_rule(repo, min_support=3, min_confidence=0.9)
        profile = UserProfile("new", {"livesIn Brooklyn": 1.0})
        inferred = rule.infer(profile, {})
        assert inferred.get("livesIn NYC-area") == 1.0

    def test_rule_skips_existing_property(self, repo):
        rule = mine_rule(repo, min_support=3, min_confidence=0.9)
        profile = UserProfile(
            "new", {"livesIn Brooklyn": 1.0, "livesIn NYC-area": 1.0}
        )
        assert rule.infer(profile, {}) == {}

    def test_rule_requires_asserted_antecedent(self, repo):
        rule = mine_rule(repo, min_support=3, min_confidence=0.9)
        profile = UserProfile("new", {"livesIn Brooklyn": 0.0})
        assert rule.infer(profile, {}) == {}
