"""Unit tests for inference rules and the rule engine (paper §3.1)."""

import pytest

from repro.core import UserProfile, UserRepository
from repro.taxonomy import (
    FunctionalPropertyRule,
    GeneralizationRule,
    RuleEngine,
    Taxonomy,
    category_property,
    parse_category,
)


@pytest.fixture()
def taxonomy():
    return Taxonomy(
        [
            ("Mexican", "Latin"),
            ("Spanish", "Latin"),
            ("Latin", "AnyCuisine"),
        ]
    )


class TestLabelHelpers:
    def test_compose_and_parse(self):
        label = category_property("avgRating", "Mexican")
        assert label == "avgRating Mexican"
        assert parse_category("avgRating", label) == "Mexican"

    def test_parse_mismatch_returns_none(self):
        assert parse_category("visitFreq", "avgRating Mexican") is None
        assert parse_category("avgRating", "avgRating") is None


class TestGeneralizationRule:
    def test_example_3_2_mexican_to_latin(self, taxonomy):
        """avgRating Mexican ⇒ derivable avgRating Latin (Example 3.2)."""
        rule = GeneralizationRule("avgRating", taxonomy, aggregate="mean")
        profile = UserProfile("u", {"avgRating Mexican": 0.9})
        inferred = rule.infer(profile, {})
        assert inferred["avgRating Latin"] == pytest.approx(0.9)
        assert inferred["avgRating AnyCuisine"] == pytest.approx(0.9)

    def test_mean_aggregate_averages_children(self, taxonomy):
        rule = GeneralizationRule("avgRating", taxonomy, aggregate="mean")
        profile = UserProfile(
            "u", {"avgRating Mexican": 1.0, "avgRating Spanish": 0.0}
        )
        assert rule.infer(profile, {})["avgRating Latin"] == pytest.approx(0.5)

    def test_support_mean_weights_by_population(self, taxonomy):
        rule = GeneralizationRule("avgRating", taxonomy)
        profile = UserProfile(
            "u", {"avgRating Mexican": 1.0, "avgRating Spanish": 0.0}
        )
        support = {"avgRating Mexican": 30, "avgRating Spanish": 10}
        latin = rule.infer(profile, support)["avgRating Latin"]
        assert latin == pytest.approx(0.75)  # 30:10 weighting

    def test_max_aggregate_for_booleans(self, taxonomy):
        rule = GeneralizationRule("livesIn", Taxonomy(
            [("Tokyo", "Asia"), ("Osaka", "Asia")]
        ), aggregate="max")
        profile = UserProfile("u", {"livesIn Tokyo": 1.0, "livesIn Osaka": 0.0})
        assert rule.infer(profile, {})["livesIn Asia"] == 1.0

    def test_explicit_parent_not_overwritten(self, taxonomy):
        rule = GeneralizationRule("avgRating", taxonomy, aggregate="mean")
        profile = UserProfile(
            "u", {"avgRating Mexican": 1.0, "avgRating Latin": 0.2}
        )
        inferred = rule.infer(profile, {})
        assert "avgRating Latin" not in inferred
        # Grandparent still derived from the *explicit* Latin value.
        assert inferred["avgRating AnyCuisine"] == pytest.approx(0.2)

    def test_multi_level_propagation(self, taxonomy):
        rule = GeneralizationRule("avgRating", taxonomy, aggregate="mean")
        profile = UserProfile("u", {"avgRating Mexican": 0.6})
        inferred = rule.infer(profile, {})
        assert set(inferred) == {"avgRating Latin", "avgRating AnyCuisine"}

    def test_unrelated_properties_ignored(self, taxonomy):
        rule = GeneralizationRule("avgRating", taxonomy, aggregate="mean")
        profile = UserProfile("u", {"visitFreq Mexican": 0.6})
        assert rule.infer(profile, {}) == {}


class TestFunctionalPropertyRule:
    def test_example_3_2_lives_in_closure(self):
        """livesIn Tokyo = 1 ⇒ livesIn X = 0 for every other city."""
        rule = FunctionalPropertyRule("livesIn", ("Tokyo", "NYC", "Paris"))
        profile = UserProfile("u", {"livesIn Tokyo": 1.0})
        inferred = rule.infer(profile, {})
        assert inferred == {"livesIn NYC": 0.0, "livesIn Paris": 0.0}

    def test_open_world_when_nothing_asserted(self):
        rule = FunctionalPropertyRule("livesIn", ("Tokyo", "NYC"))
        assert rule.infer(UserProfile("u", {}), {}) == {}

    def test_contradictory_assertions_skip_inference(self):
        rule = FunctionalPropertyRule("livesIn", ("Tokyo", "NYC"))
        profile = UserProfile(
            "u", {"livesIn Tokyo": 1.0, "livesIn NYC": 1.0}
        )
        assert rule.infer(profile, {}) == {}

    def test_existing_values_untouched(self):
        rule = FunctionalPropertyRule("livesIn", ("Tokyo", "NYC", "Paris"))
        profile = UserProfile(
            "u", {"livesIn Tokyo": 1.0, "livesIn NYC": 0.0}
        )
        inferred = rule.infer(profile, {})
        assert inferred == {"livesIn Paris": 0.0}


class TestRuleEngine:
    def test_enrich_adds_but_never_overwrites(self, taxonomy):
        engine = RuleEngine(
            [GeneralizationRule("avgRating", taxonomy, aggregate="mean")]
        )
        repo = UserRepository(
            [
                UserProfile("u1", {"avgRating Mexican": 0.8}),
                UserProfile("u2", {"avgRating Latin": 0.3}),
            ]
        )
        enriched = engine.enrich(repo)
        assert enriched.profile("u1").score("avgRating Latin") == pytest.approx(0.8)
        assert enriched.profile("u2").score("avgRating Latin") == pytest.approx(0.3)
        # Original repository untouched.
        assert not repo.profile("u1").has("avgRating Latin")

    def test_rules_chain_in_order(self):
        """Functional closure runs first, generalization sees its output."""
        city_tax = Taxonomy([("Tokyo", "Asia"), ("NYC", "America")])
        engine = RuleEngine(
            [
                FunctionalPropertyRule("livesIn", ("Tokyo", "NYC")),
                GeneralizationRule("livesIn", city_tax, aggregate="max"),
            ]
        )
        repo = UserRepository([UserProfile("u", {"livesIn Tokyo": 1.0})])
        profile = engine.enrich(repo).profile("u")
        assert profile.score("livesIn NYC") == 0.0
        assert profile.score("livesIn Asia") == 1.0
        assert profile.score("livesIn America") == 0.0

    def test_empty_engine_is_identity(self, table2_repo):
        enriched = RuleEngine([]).enrich(table2_repo)
        assert len(enriched) == len(table2_repo)
        assert (
            enriched.profile("Alice").scores
            == table2_repo.profile("Alice").scores
        )
