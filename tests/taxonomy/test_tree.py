"""Unit tests for the taxonomy DAG."""

import pytest

from repro.core import TaxonomyError
from repro.taxonomy import Taxonomy


@pytest.fixture()
def cuisine():
    return Taxonomy(
        [
            ("Mexican", "Latin"),
            ("Tex-Mex", "Latin"),
            ("Tex-Mex", "American"),
            ("Latin", "AnyCuisine"),
            ("American", "AnyCuisine"),
        ]
    )


class TestConstruction:
    def test_len_and_contains(self, cuisine):
        assert len(cuisine) == 5
        assert "Mexican" in cuisine
        assert "Thai" not in cuisine

    def test_self_loop_rejected(self):
        with pytest.raises(TaxonomyError):
            Taxonomy([("A", "A")])

    def test_cycle_rejected_and_rolled_back(self):
        taxonomy = Taxonomy([("A", "B"), ("B", "C")])
        with pytest.raises(TaxonomyError):
            taxonomy.add_edge("C", "A")
        # The offending edge must not linger.
        assert taxonomy.parents("C") == set()

    def test_add_category_without_parents(self):
        taxonomy = Taxonomy()
        taxonomy.add_category("Loner")
        assert "Loner" in taxonomy
        assert taxonomy.roots() == {"Loner"}


class TestNavigation:
    def test_parents_children(self, cuisine):
        assert cuisine.parents("Mexican") == {"Latin"}
        assert cuisine.parents("Tex-Mex") == {"Latin", "American"}
        assert cuisine.children("Latin") == {"Mexican", "Tex-Mex"}

    def test_ancestors_transitive(self, cuisine):
        assert cuisine.ancestors("Mexican") == {"Latin", "AnyCuisine"}

    def test_descendants_transitive(self, cuisine):
        assert cuisine.descendants("AnyCuisine") == {
            "Mexican",
            "Tex-Mex",
            "Latin",
            "American",
        }

    def test_roots_and_leaves(self, cuisine):
        assert cuisine.roots() == {"AnyCuisine"}
        assert cuisine.leaves() == {"Mexican", "Tex-Mex"}

    def test_depth(self, cuisine):
        assert cuisine.depth("AnyCuisine") == 0
        assert cuisine.depth("Latin") == 1
        assert cuisine.depth("Mexican") == 2

    def test_unknown_category_raises(self, cuisine):
        with pytest.raises(TaxonomyError):
            cuisine.parents("Sushi")

    def test_topological_levels_leaves_first(self, cuisine):
        levels = cuisine.topological_levels()
        flat = [c for level in levels for c in level]
        # Children must appear before their parents.
        assert flat.index("Mexican") < flat.index("Latin")
        assert flat.index("Latin") < flat.index("AnyCuisine")


class TestCatalogTaxonomies:
    def test_builtin_cuisine_taxonomy(self):
        from repro.datasets import catalog

        taxonomy = catalog.cuisine_taxonomy()
        assert taxonomy.roots() == {"AnyCuisine"}
        assert "Latin" in taxonomy.ancestors("Mexican")
        assert taxonomy.depth("Mexican") == 2

    def test_builtin_city_taxonomy(self):
        from repro.datasets import catalog

        taxonomy = catalog.city_taxonomy()
        assert taxonomy.parents("Tokyo") == {"Asia-Pacific"}
        assert len(taxonomy.roots()) > 1  # one region per continent-ish
