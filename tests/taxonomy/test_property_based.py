"""Property-based tests (hypothesis) for taxonomy enrichment invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import UserProfile, UserRepository
from repro.taxonomy import (
    FunctionalPropertyRule,
    GeneralizationRule,
    RuleEngine,
    Taxonomy,
    category_property,
)

LEAVES = ("Mexican", "Spanish", "Thai", "Sushi")
FAMILIES = {"Mexican": "Latin", "Spanish": "Latin", "Thai": "Asian", "Sushi": "Asian"}


def _taxonomy() -> Taxonomy:
    taxonomy = Taxonomy()
    for leaf, family in FAMILIES.items():
        taxonomy.add_edge(leaf, family)
    for family in set(FAMILIES.values()):
        taxonomy.add_edge(family, "AnyCuisine")
    return taxonomy


@st.composite
def profiles(draw):
    scores = {}
    for leaf in LEAVES:
        if draw(st.booleans()):
            scores[category_property("avgRating", leaf)] = draw(
                st.floats(0.0, 1.0, allow_nan=False)
            )
    return UserProfile("u", scores)


@settings(max_examples=60, deadline=None)
@given(profiles(), st.sampled_from(["mean", "max", "support-mean"]))
def test_enrichment_only_adds_properties(profile, aggregate):
    rule = GeneralizationRule("avgRating", _taxonomy(), aggregate=aggregate)
    engine = RuleEngine([rule])
    enriched = engine.enrich_profile(profile, {})
    # Every original property is preserved with its original score.
    for label, score in profile.scores.items():
        assert enriched.scores[label] == score
    assert set(profile.scores) <= set(enriched.scores)


@settings(max_examples=60, deadline=None)
@given(profiles(), st.sampled_from(["mean", "max", "support-mean"]))
def test_inferred_scores_within_child_range(profile, aggregate):
    """Any aggregate of child scores stays within their min/max."""
    rule = GeneralizationRule("avgRating", _taxonomy(), aggregate=aggregate)
    inferred = rule.infer(profile, {})
    for family in ("Latin", "Asian"):
        label = category_property("avgRating", family)
        if label not in inferred:
            continue
        children = [
            profile.scores[category_property("avgRating", leaf)]
            for leaf in LEAVES
            if FAMILIES[leaf] == family
            and category_property("avgRating", leaf) in profile
        ]
        assert min(children) - 1e-12 <= inferred[label] <= max(children) + 1e-12


@settings(max_examples=60, deadline=None)
@given(profiles(), st.sampled_from(["mean", "max", "support-mean"]))
def test_enrichment_idempotent(profile, aggregate):
    """Enriching an already-enriched profile adds nothing new."""
    engine = RuleEngine(
        [GeneralizationRule("avgRating", _taxonomy(), aggregate=aggregate)]
    )
    once = engine.enrich_profile(profile, {})
    twice = engine.enrich_profile(once, {})
    assert once.scores == twice.scores


@settings(max_examples=40, deadline=None)
@given(st.sampled_from(LEAVES))
def test_functional_rule_closure_is_complete(held_city):
    rule = FunctionalPropertyRule("city", LEAVES)
    profile = UserProfile("u", {category_property("city", held_city): 1.0})
    inferred = rule.infer(profile, {})
    assert set(inferred) == {
        category_property("city", other)
        for other in LEAVES
        if other != held_city
    }
    assert all(score == 0.0 for score in inferred.values())


@settings(max_examples=30, deadline=None)
@given(st.lists(profiles(), min_size=1, max_size=6))
def test_repository_enrichment_matches_per_profile(profile_list):
    repo = UserRepository(
        UserProfile(f"u{i}", p.scores) for i, p in enumerate(profile_list)
    )
    engine = RuleEngine([GeneralizationRule("avgRating", _taxonomy())])
    support = {
        label: repo.support(label) for label in repo.property_labels
    }
    enriched = engine.enrich(repo)
    for i, original in enumerate(profile_list):
        direct = engine.enrich_profile(
            UserProfile(f"u{i}", original.scores), support
        )
        assert enriched.profile(f"u{i}").scores == direct.scores
