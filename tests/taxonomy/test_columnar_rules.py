"""Columnar enrichment parity: ``enrich_columns`` vs ``RuleEngine``.

The dict-walking :class:`RuleEngine` stays the oracle; the vectorized
twin must reproduce its output bit-for-bit — same inferred labels, same
float64 scores — for every shipped rule family, aggregate and rule
chaining order, on randomized repositories.
"""

import random

import pytest

from repro.core import UserProfile, UserRepository
from repro.core.columnar import ColumnarProfiles, columnar_to_repository
from repro.core.errors import TaxonomyError
from repro.taxonomy import (
    FunctionalPropertyRule,
    GeneralizationRule,
    RuleEngine,
    Taxonomy,
    category_property,
    enrich_columns,
)
from repro.taxonomy.rules import InferenceRule

CUISINES = ("Mexican", "Spanish", "Italian", "French")
CITIES = ("haifa", "paris", "nyc")


@pytest.fixture(scope="module")
def taxonomy():
    return Taxonomy(
        [
            ("Mexican", "Latin"),
            ("Spanish", "Latin"),
            ("Italian", "European"),
            ("French", "European"),
            ("Latin", "AnyCuisine"),
            ("European", "AnyCuisine"),
        ]
    )


def _random_repo(seed, n_users=40):
    """Profiles over cuisine ratings and (sometimes asserted) cities."""
    rng = random.Random(seed)
    profiles = []
    for i in range(n_users):
        scores = {}
        for cuisine in CUISINES:
            if rng.random() < 0.5:
                scores[category_property("avgRating", cuisine)] = round(
                    rng.random(), 3
                )
        for city in CITIES:
            if rng.random() < 0.3:
                # Mix hard assertions (1.0) with soft scores so the
                # functional rule fires for some users and not others.
                scores[category_property("livesIn", city)] = (
                    1.0 if rng.random() < 0.6 else round(rng.random(), 3)
                )
        if scores:
            profiles.append(UserProfile(f"u{i:03d}", scores))
    return UserRepository(profiles)


def _scores_by_user(repository):
    return {
        profile.user_id: dict(profile.scores) for profile in repository
    }


def _assert_parity(repository, rules):
    oracle = RuleEngine(rules).enrich(repository)
    columns = enrich_columns(
        ColumnarProfiles.from_repository(repository), rules
    )
    assert _scores_by_user(columnar_to_repository(columns)) == (
        _scores_by_user(oracle)
    )


class TestGeneralizationParity:
    @pytest.mark.parametrize("aggregate", ("support-mean", "mean", "max"))
    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_multi_level_aggregates(self, taxonomy, aggregate, seed):
        rules = [
            GeneralizationRule("avgRating", taxonomy, aggregate=aggregate)
        ]
        _assert_parity(_random_repo(seed), rules)

    def test_explicit_parent_stays_authoritative(self, taxonomy):
        repo = UserRepository(
            [
                UserProfile(
                    "u",
                    {
                        category_property("avgRating", "Mexican"): 0.9,
                        category_property("avgRating", "Latin"): 0.2,
                    },
                )
            ]
        )
        _assert_parity(
            repo, [GeneralizationRule("avgRating", taxonomy, "mean")]
        )


class TestFunctionalParity:
    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_closure_matches_engine(self, seed):
        rules = [FunctionalPropertyRule("livesIn", CITIES)]
        _assert_parity(_random_repo(seed), rules)


class TestChaining:
    @pytest.mark.parametrize("seed", (3, 4))
    def test_rules_fire_in_order_over_shared_state(self, taxonomy, seed):
        # Generalization inferences become staged input to the
        # functional rule (and vice versa), exactly like the engine's
        # merged-profile threading.
        rules = [
            GeneralizationRule("avgRating", taxonomy),
            FunctionalPropertyRule("livesIn", CITIES),
            GeneralizationRule("avgRating", taxonomy, aggregate="max"),
        ]
        _assert_parity(_random_repo(seed), rules)


class TestEdgeCases:
    def test_no_inference_returns_same_object(self, taxonomy):
        profiles = ColumnarProfiles.from_repository(_random_repo(9))
        assert enrich_columns(profiles, []) is profiles

    def test_custom_rule_rejected(self):
        class Custom(InferenceRule):
            def infer(self, profile, support):
                return {}

        profiles = ColumnarProfiles.from_repository(_random_repo(9))
        with pytest.raises(TaxonomyError, match="RuleEngine path"):
            enrich_columns(profiles, [Custom()])
