"""Integration tests for the ``python -m repro`` CLI pipeline."""

import json

import pytest

from repro.cli import _parse_group_key, main
from repro.core import PodiumError
from repro.core.groups import GroupKey
from repro.datasets import example_repository, save_profiles


@pytest.fixture()
def profiles_path(tmp_path):
    path = tmp_path / "profiles.json"
    save_profiles(example_repository(), path)
    return str(path)


class TestParseGroupKey:
    def test_simple(self):
        assert _parse_group_key("livesIn Tokyo::true") == GroupKey(
            "livesIn Tokyo", "true"
        )

    def test_property_with_double_colon_uses_last(self):
        assert _parse_group_key("a::b::c") == GroupKey("a::b", "c")

    @pytest.mark.parametrize("bad", ["nope", "::x", "x::"])
    def test_malformed(self, bad):
        with pytest.raises(PodiumError):
            _parse_group_key(bad)


class TestGenerateDerivePipeline:
    def test_generate_then_derive(self, tmp_path, capsys):
        dataset_path = tmp_path / "ds.json"
        profiles_path = tmp_path / "profiles.json"
        assert (
            main(
                [
                    "generate",
                    "--preset",
                    "yelp",
                    "--users",
                    "40",
                    "--seed",
                    "3",
                    "--out",
                    str(dataset_path),
                ]
            )
            == 0
        )
        assert dataset_path.exists()
        assert (
            main(
                [
                    "derive",
                    "--dataset",
                    str(dataset_path),
                    "--preset",
                    "yelp",
                    "--out",
                    str(profiles_path),
                ]
            )
            == 0
        )
        document = json.loads(profiles_path.read_text())
        assert document["format"] == "podium-profiles-v1"
        assert len(document["users"]) == 40
        out = capsys.readouterr().out
        assert "40 users" in out
        assert "40 profiles" in out


class TestSelect:
    def test_plain_selection(self, profiles_path, capsys):
        code = main(
            [
                "select",
                "--profiles",
                profiles_path,
                "--budget",
                "2",
            ]
        )
        assert code == 0
        response = json.loads(capsys.readouterr().out)
        assert len(response["selected"]) == 2
        assert "explanation" not in response

    def test_selection_with_explanations_and_distribution(
        self, profiles_path, capsys
    ):
        code = main(
            [
                "select",
                "--profiles",
                profiles_path,
                "--budget",
                "2",
                "--explain",
                "--distribution",
                "avgRating Mexican",
            ]
        )
        assert code == 0
        response = json.loads(capsys.readouterr().out)
        panes = response["explanation"]
        assert panes["right_pane"][0]["property"] == "avgRating Mexican"

    def test_selection_with_feedback(self, profiles_path, capsys):
        code = main(
            [
                "select",
                "--profiles",
                profiles_path,
                "--budget",
                "2",
                "--must-not",
                "livesIn Tokyo::true",
            ]
        )
        assert code == 0
        response = json.loads(capsys.readouterr().out)
        assert "Alice" not in response["selected"]
        assert response["refined_pool_size"] == 3

    def test_weights_flag(self, profiles_path, capsys):
        code = main(
            [
                "select",
                "--profiles",
                profiles_path,
                "--budget",
                "2",
                "--weights",
                "Iden",
            ]
        )
        assert code == 0
        json.loads(capsys.readouterr().out)

    def test_bad_group_key_reports_error(self, profiles_path, capsys):
        code = main(
            [
                "select",
                "--profiles",
                profiles_path,
                "--must-not",
                "malformed",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_html_output(self, profiles_path, tmp_path, capsys):
        html_path = tmp_path / "page.html"
        code = main(
            [
                "select",
                "--profiles",
                profiles_path,
                "--budget",
                "2",
                "--html",
                str(html_path),
            ]
        )
        assert code == 0
        html = html_path.read_text()
        assert html.startswith("<!DOCTYPE html>")
        # stdout stays pure JSON despite the side output.
        json.loads(capsys.readouterr().out)


class TestBench:
    def test_bench_writes_backend_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_selection.json"
        code = main(
            [
                "bench",
                "--sizes",
                "120",
                "--repetitions",
                "1",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert report["backends"] == ["eager", "lazy", "matrix"]
        (row,) = report["rows"]
        assert row["users"] == 120
        assert row["selections_match"] is True
        assert set(row["seconds"]) == {"eager", "lazy", "matrix"}
        assert "matrix speedup" in capsys.readouterr().out
