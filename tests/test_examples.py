"""Smoke tests: every shipped example runs to completion.

Each example is executed in a subprocess (its own interpreter, like a
user would run it) with a generous timeout; internal assertions inside
the examples double as correctness checks.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: (script, marker expected in stdout, timeout seconds)
EXAMPLES = [
    ("quickstart.py", "Selected: ('Alice', 'Eve')", 120),
    ("restaurant_survey.py", "all selected panelists", 240),
    ("rotating_panels.py", "Rotation pool", 240),
    ("service_demo.py", "Service stopped.", 240),
    ("sortition.py", "Every quota satisfied.", 240),
    ("opinion_procurement.py", "Opinion diversity", 420),
]


@pytest.mark.parametrize(
    "script,marker,timeout", EXAMPLES, ids=[e[0] for e in EXAMPLES]
)
def test_example_runs(script, marker, timeout):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert marker in completed.stdout
