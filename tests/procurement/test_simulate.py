"""Unit tests for the opinion-procurement simulation (paper §8)."""

import pytest

from repro.baselines import PodiumSelector, RandomSelector
from repro.core import GroupingConfig
from repro.datasets import tripadvisor_derive_config
from repro.procurement import (
    CUISINE_LOCATION_PREFIXES,
    ProcurementConfig,
    holdout_repository,
    pick_destinations,
    procure_destination,
    run_procurement,
)


@pytest.fixture()
def config():
    return ProcurementConfig(
        budget=4,
        derive=tripadvisor_derive_config(),
        grouping=GroupingConfig(min_support=2),
        min_reviews_per_destination=10,
        max_destinations=4,
    )


class TestPickDestinations:
    def test_most_reviewed_first(self, ta_dataset, config):
        destinations = pick_destinations(ta_dataset, config)
        counts = [len(ta_dataset.reviews_of(d)) for d in destinations]
        assert counts == sorted(counts, reverse=True)
        assert len(destinations) <= config.max_destinations
        assert all(c >= 10 for c in counts)

    def test_cap_respected(self, ta_dataset, config):
        small = ProcurementConfig(
            budget=4, min_reviews_per_destination=1, max_destinations=2
        )
        assert len(pick_destinations(ta_dataset, small)) == 2


class TestHoldoutRepository:
    def test_pool_is_reviewers(self, ta_dataset, config):
        destination = pick_destinations(ta_dataset, config)[0]
        repo = holdout_repository(ta_dataset, destination, config)
        reviewers = {r.user_id for r in ta_dataset.reviews_of(destination)}
        assert set(repo.user_ids) == reviewers

    def test_destination_data_hidden(self, ta_dataset, config):
        """The destination's own reviews must not leak into profiles."""
        destination = pick_destinations(ta_dataset, config)[0]
        with_holdout = holdout_repository(ta_dataset, destination, config)
        leaky_config = ProcurementConfig(
            budget=config.budget,
            derive=config.derive,
            grouping=config.grouping,
            min_reviews_per_destination=config.min_reviews_per_destination,
            max_destinations=config.max_destinations,
        )
        # Build without exclusion for comparison.
        from repro.datasets import build_repository

        reviewers = list(with_holdout.user_ids)
        leaky = build_repository(
            ta_dataset, config.derive, user_ids=reviewers
        )
        # At least one user's visit frequencies must change when the
        # destination is excluded (they reviewed it by construction).
        changed = any(
            with_holdout.profile(u).scores != leaky.profile(u).scores
            for u in reviewers
        )
        assert changed

    def test_property_prefix_filter(self, ta_dataset, config):
        destination = pick_destinations(ta_dataset, config)[0]
        repo = holdout_repository(ta_dataset, destination, config)
        for label in repo.property_labels:
            assert any(
                label.startswith(p) for p in CUISINE_LOCATION_PREFIXES
            )

    def test_no_filter_keeps_all_families(self, ta_dataset, config):
        from dataclasses import replace

        open_config = replace(config, property_prefixes=None)
        destination = pick_destinations(ta_dataset, open_config)[0]
        repo = holdout_repository(ta_dataset, destination, open_config)
        assert any(
            label.startswith("ageGroup") for label in repo.property_labels
        )


class TestProcureDestination:
    def test_selected_are_reviewers(self, ta_dataset, config):
        destination = pick_destinations(ta_dataset, config)[0]
        selected = procure_destination(
            ta_dataset, destination, PodiumSelector(), config
        )
        reviewers = {r.user_id for r in ta_dataset.reviews_of(destination)}
        assert set(selected) <= reviewers
        assert len(selected) <= config.budget

    def test_prebuilt_repository_short_circuit(self, ta_dataset, config):
        destination = pick_destinations(ta_dataset, config)[0]
        repo = holdout_repository(ta_dataset, destination, config)
        a = procure_destination(
            ta_dataset, destination, PodiumSelector(), config, repository=repo
        )
        b = procure_destination(
            ta_dataset, destination, PodiumSelector(), config
        )
        assert a == b


class TestRunProcurement:
    def test_reports_per_selector(self, ta_dataset, config):
        reports = run_procurement(
            ta_dataset, [PodiumSelector(), RandomSelector()], config, seed=3
        )
        assert set(reports) == {"Podium", "Random"}
        for report in reports.values():
            assert report.destinations == len(
                pick_destinations(ta_dataset, config)
            )
            assert 0.0 <= report.topic_sentiment_coverage <= 1.0

    def test_seeded_determinism(self, ta_dataset, config):
        a = run_procurement(ta_dataset, [RandomSelector()], config, seed=5)
        b = run_procurement(ta_dataset, [RandomSelector()], config, seed=5)
        assert a["Random"].as_dict() == b["Random"].as_dict()

    def test_different_seeds_differ_for_random(self, ta_dataset, config):
        a = run_procurement(ta_dataset, [RandomSelector()], config, seed=5)
        b = run_procurement(ta_dataset, [RandomSelector()], config, seed=6)
        assert a["Random"].as_dict() != b["Random"].as_dict()
