"""Shared fixtures: the paper's running example and small synthetic data."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    GroupingConfig,
    build_instance,
    build_simple_groups,
)
from repro.datasets import (
    build_repository,
    example_grouping_config,
    example_repository,
    generate,
    tripadvisor_config,
    tripadvisor_derive_config,
    yelp_config,
    yelp_derive_config,
)
from repro.datasets.synth import generate_profile_repository


@pytest.fixture(scope="session")
def table2_repo():
    """The five-user Table 2 repository."""
    return example_repository()


@pytest.fixture(scope="session")
def table2_groups(table2_repo):
    """Example 3.8's groups over Table 2 (fixed splits at 0.4 / 0.65)."""
    return build_simple_groups(table2_repo, example_grouping_config())


@pytest.fixture()
def table2_instance(table2_repo, table2_groups):
    """LBS + Single instance over Table 2 with B = 2 (Example 3.8)."""
    return build_instance(table2_repo, budget=2, groups=table2_groups)


@pytest.fixture(scope="session")
def small_profile_repo():
    """A 60-user synthetic profile repository (fast, deterministic)."""
    return generate_profile_repository(
        n_users=60, n_properties=40, mean_profile_size=12.0, seed=123
    )


@pytest.fixture(scope="session")
def small_instance(small_profile_repo):
    groups = build_simple_groups(small_profile_repo, GroupingConfig())
    return build_instance(small_profile_repo, budget=5, groups=groups)


@pytest.fixture(scope="session")
def ta_dataset():
    """A small TripAdvisor-like review dataset."""
    return generate(tripadvisor_config(n_users=120), seed=77)


@pytest.fixture(scope="session")
def ta_repository(ta_dataset):
    return build_repository(ta_dataset, tripadvisor_derive_config())


@pytest.fixture(scope="session")
def yelp_dataset():
    """A small Yelp-like review dataset (with useful votes)."""
    return generate(yelp_config(n_users=150), seed=78)


@pytest.fixture(scope="session")
def yelp_repository(yelp_dataset):
    return build_repository(yelp_dataset, yelp_derive_config())


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
