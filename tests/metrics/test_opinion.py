"""Unit tests for the opinion-diversity metrics (paper §8.2)."""

import pytest

from repro.datasets import (
    Business,
    RawUser,
    Review,
    ReviewDataset,
    TopicMention,
)
from repro.metrics import (
    evaluate_opinions,
    rating_distribution_similarity,
    rating_variance,
    topic_sentiment_coverage,
    usefulness,
)


@pytest.fixture()
def crafted():
    """One destination, four reviewers with known topics and ratings."""
    users = [RawUser(f"u{i}") for i in range(4)]
    business = Business(
        "dest", "Tokyo", ("Mexican",), topics=("service", "price")
    )
    reviews = [
        Review(
            "u0", "dest", 5,
            (TopicMention("service", "positive"),), useful_votes=4,
        ),
        Review(
            "u1", "dest", 1,
            (TopicMention("service", "negative"),
             TopicMention("price", "negative")), useful_votes=1,
        ),
        Review(
            "u2", "dest", 4,
            (TopicMention("price", "positive"),), useful_votes=2,
        ),
        Review("u3", "dest", 4, (), useful_votes=0),
    ]
    return ReviewDataset(users, [business], reviews)


class TestTopicSentimentCoverage:
    def test_full_subset_covers_all_attainable(self, crafted):
        value = topic_sentiment_coverage(
            crafted, "dest", ["u0", "u1", "u2", "u3"]
        )
        assert value == 1.0

    def test_partial_subset(self, crafted):
        # u0 alone covers 1 of the 4 attainable (topic, sentiment) pairs.
        assert topic_sentiment_coverage(crafted, "dest", ["u0"]) == 0.25

    def test_grid_denominator(self, crafted):
        # The full grid is 2 topics x 2 sentiments = 4; all present here,
        # so attainable=False agrees in this instance.
        grid = topic_sentiment_coverage(
            crafted, "dest", ["u0", "u1", "u2"], attainable=False
        )
        assert grid == 1.0

    def test_grid_larger_than_attainable(self, crafted):
        # u0+u2: positive mentions only -> 2/4 of the grid.
        value = topic_sentiment_coverage(
            crafted, "dest", ["u0", "u2"], attainable=False
        )
        assert value == 0.5

    def test_empty_subset(self, crafted):
        assert topic_sentiment_coverage(crafted, "dest", []) == 0.0


class TestUsefulness:
    def test_sums_votes(self, crafted):
        assert usefulness(crafted, "dest", ["u0", "u1"]) == 5.0
        assert usefulness(crafted, "dest", ["u3"]) == 0.0

    def test_non_reviewers_contribute_nothing(self, crafted):
        assert usefulness(crafted, "dest", ["ghost"]) == 0.0


class TestRatingDistributionSimilarity:
    def test_full_population_perfect(self, crafted):
        value = rating_distribution_similarity(
            crafted, "dest", ["u0", "u1", "u2", "u3"]
        )
        assert value == pytest.approx(1.0)

    def test_skewed_subset_penalized(self, crafted):
        skewed = rating_distribution_similarity(crafted, "dest", ["u0"])
        assert skewed < 1.0


class TestRatingVariance:
    def test_known_value(self, crafted):
        # u0=5, u1=1 -> variance of [5, 1] = 4.
        assert rating_variance(crafted, "dest", ["u0", "u1"]) == pytest.approx(4.0)

    def test_single_review_zero(self, crafted):
        assert rating_variance(crafted, "dest", ["u0"]) == 0.0


class TestEvaluateOpinions:
    def test_averages_over_destinations(self, crafted):
        report = evaluate_opinions(
            crafted, {"dest": ["u0", "u1", "u2", "u3"]}
        )
        assert report.destinations == 1
        assert report.topic_sentiment_coverage == 1.0
        assert report.usefulness == 7.0

    def test_empty_selection_map(self, crafted):
        report = evaluate_opinions(crafted, {})
        assert report.destinations == 0
        assert report.topic_sentiment_coverage == 0.0

    def test_as_dict_keys(self, crafted):
        report = evaluate_opinions(crafted, {"dest": ["u0"]})
        assert set(report.as_dict()) == {
            "topic_sentiment_coverage",
            "usefulness",
            "rating_distribution_similarity",
            "rating_variance",
        }
