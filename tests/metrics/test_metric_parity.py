"""Vector/python parity for the CSR-backed intrinsic coverage metrics.

``top_k_coverage`` and ``intersected_property_coverage`` run as
membership-mask arithmetic by default; the original set-loop
implementations are kept as ``method="python"`` oracles and both must
return *identical* floats — the mask arithmetic performs the same exact
integer counts, so no tolerance is needed.
"""

import pytest

from repro.core import GroupingConfig, build_instance, build_simple_groups
from repro.core.errors import PodiumError
from repro.datasets.synth import generate_profile_repository
from repro.metrics import (
    evaluate_intrinsic,
    intersected_property_coverage,
    top_k_coverage,
)


def _instance(seed, n_users=80, min_support=1):
    repo = generate_profile_repository(
        n_users=n_users, n_properties=40, mean_profile_size=12.0, seed=seed
    )
    groups = build_simple_groups(
        repo, GroupingConfig(min_support=min_support)
    )
    return repo, build_instance(repo, budget=6, groups=groups)


@pytest.mark.parametrize("seed", (0, 1, 2))
@pytest.mark.parametrize("k", (5, 50, 200))
class TestCoverageParity:
    def test_top_k_coverage(self, seed, k):
        repo, instance = _instance(seed)
        selected = repo.user_ids[::7]
        assert top_k_coverage(
            instance, selected, k=k, method="vector"
        ) == top_k_coverage(instance, selected, k=k, method="python")

    def test_intersected_property_coverage(self, seed, k):
        repo, instance = _instance(seed)
        selected = repo.user_ids[::7]
        assert intersected_property_coverage(
            instance, selected, k=k, method="vector"
        ) == intersected_property_coverage(
            instance, selected, k=k, method="python"
        )


class TestParityEdges:
    def test_examination_cap_applies_to_same_pairs(self):
        # A tiny cap truncates the row-major scan mid-way; both methods
        # must cut at the identical pair.
        repo, instance = _instance(3)
        selected = repo.user_ids[:10]
        for cap in (1, 5, 17):
            assert intersected_property_coverage(
                instance, selected, k=50,
                max_intersections=cap, method="vector",
            ) == intersected_property_coverage(
                instance, selected, k=50,
                max_intersections=cap, method="python",
            )

    def test_empty_selection(self):
        _, instance = _instance(0)
        for method in ("vector", "python"):
            assert top_k_coverage(instance, [], k=10, method=method) == 0.0

    def test_full_report_parity(self):
        repo, instance = _instance(1)
        selected = repo.user_ids[:8]
        assert evaluate_intrinsic(
            instance, selected, method="vector"
        ) == evaluate_intrinsic(instance, selected, method="python")

    def test_unknown_method_rejected(self):
        _, instance = _instance(0)
        with pytest.raises(PodiumError):
            top_k_coverage(instance, [], method="fast")
        with pytest.raises(PodiumError):
            intersected_property_coverage(instance, [], method="fast")
