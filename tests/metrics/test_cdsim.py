"""Unit tests for CD-sim (paper Def. 8.1, Example 8.2)."""

import pytest

from repro.core import PodiumError
from repro.metrics import cd_sim, cd_sim_from_counts, normalize


class TestCdSim:
    def test_example_8_2(self):
        """Population [0.23, 0.4, 0.37] vs selection [0.4, 0.5, 0.1]:
        penalty only for under-representing the third bucket -> ~0.757."""
        value = cd_sim([0.4, 0.5, 0.1], [0.23, 0.4, 0.37])
        assert value == pytest.approx(0.757, abs=0.001)

    def test_identical_distributions_score_one(self):
        assert cd_sim([0.5, 0.5], [0.5, 0.5]) == 1.0

    def test_over_representation_not_taxed(self):
        """Doubling a bucket's share only taxes the buckets it displaces."""
        base = [0.25, 0.25, 0.25, 0.25]
        over = [0.7, 0.1, 0.1, 0.1]
        value = cd_sim(over, base)
        # Three buckets under-represented by 0.15/0.25 each.
        assert value == pytest.approx(1 - 3 * (0.15 / 0.25) / 4)

    def test_total_miss_of_one_bucket(self):
        value = cd_sim([1.0, 0.0], [0.5, 0.5])
        assert value == pytest.approx(1 - 0.5)

    def test_empty_population_bucket_ignored(self):
        value = cd_sim([0.0, 1.0], [0.0, 1.0])
        assert value == 1.0

    def test_empty_domain_scores_one(self):
        assert cd_sim([], []) == 1.0

    def test_mismatched_lengths_raise(self):
        with pytest.raises(PodiumError):
            cd_sim([0.5], [0.5, 0.5])

    def test_worst_case_is_zero(self):
        """Missing every non-empty bucket entirely scores 0."""
        assert cd_sim([0.0, 0.0], [0.5, 0.5]) == pytest.approx(0.0)


class TestNormalize:
    def test_counts_to_distribution(self):
        assert normalize([2, 2, 4]) == pytest.approx([0.25, 0.25, 0.5])

    def test_all_zero_stays_zero(self):
        assert normalize([0, 0]) == [0.0, 0.0]

    def test_from_counts_shortcut(self):
        direct = cd_sim(normalize([1, 3]), normalize([2, 2]))
        assert cd_sim_from_counts([1, 3], [2, 2]) == direct


class TestKsSimilarity:
    """The inadequate alternative of §8.2, kept for contrast."""

    def test_identity_is_one(self):
        from repro.metrics import ks_similarity

        assert ks_similarity([0.3, 0.7], [0.3, 0.7]) == 1.0

    def test_known_statistic(self):
        from repro.metrics import ks_similarity

        # CDF gaps: |0.5-0.2|=0.3, |1.0-1.0|=0.
        assert ks_similarity([0.5, 0.5], [0.2, 0.8]) == pytest.approx(0.7)

    def test_taxes_over_representation_unlike_cdsim(self):
        from repro.metrics import cd_sim, ks_similarity

        population = [0.9, 0.1]  # one big, one tiny group
        # Coverage-driven subset: the tiny group over-represented.
        subset = [0.5, 0.5]
        assert ks_similarity(subset, population) == pytest.approx(0.6)
        # CD-sim only taxes the big group's shortfall (0.4/0.9)/2.
        assert cd_sim(subset, population) == pytest.approx(
            1 - (0.4 / 0.9) / 2
        )
        assert cd_sim(subset, population) > ks_similarity(subset, population)

    def test_mismatched_lengths_raise(self):
        from repro.core import PodiumError
        from repro.metrics import ks_similarity

        with pytest.raises(PodiumError):
            ks_similarity([1.0], [0.5, 0.5])

    def test_counts_shortcut(self):
        from repro.metrics import ks_similarity, ks_similarity_from_counts

        assert ks_similarity_from_counts([1, 1], [2, 8]) == pytest.approx(
            ks_similarity([0.5, 0.5], [0.2, 0.8])
        )
