"""Unit tests for the intrinsic diversity metrics (paper §8.2)."""

import pytest

from repro.core import GroupingConfig, build_instance, build_simple_groups
from repro.metrics import (
    distribution_similarity,
    evaluate_intrinsic,
    intersected_property_coverage,
    top_k_coverage,
)


class TestTopKCoverage:
    def test_alice_eve_on_running_example(self, table2_instance):
        # Top-3 largest groups: avgRating Mexican high (3) + two of the
        # size-2 groups; Alice+Eve hit all the largest ones they're in.
        value = top_k_coverage(table2_instance, ["Alice", "Eve"], k=1)
        assert value == 1.0  # the single largest group contains Alice

    def test_zero_when_subset_misses_top(self, table2_instance):
        # Bob is in none of the size>=2 groups.
        assert top_k_coverage(table2_instance, ["Bob"], k=3) == 0.0

    def test_full_population_covers_everything(self, table2_repo, table2_instance):
        assert (
            top_k_coverage(table2_instance, table2_repo.user_ids, k=200)
            == 1.0
        )

    def test_empty_groups_edge(self, table2_instance):
        assert top_k_coverage(table2_instance, [], k=5) == 0.0


class TestIntersectedCoverage:
    def test_counts_cross_property_intersections(self, table2_instance):
        """With k=5 the size floor is 2; qualifying intersections must
        span different properties and have >= 2 members."""
        value_alice_david = intersected_property_coverage(
            table2_instance, ["Alice", "David"], k=5
        )
        value_bob = intersected_property_coverage(
            table2_instance, ["Bob"], k=5
        )
        assert value_alice_david > value_bob

    def test_same_property_buckets_never_pair(self, table2_instance):
        # All groups of one property are disjoint, so any same-property
        # "intersection" would be empty — implicitly excluded; smoke-check
        # the function runs with a tiny cap.
        value = intersected_property_coverage(
            table2_instance, ["Alice"], k=5, max_intersections=3
        )
        assert 0.0 <= value <= 1.0

    def test_full_population_covers_all(self, table2_repo, table2_instance):
        assert (
            intersected_property_coverage(
                table2_instance, table2_repo.user_ids, k=5
            )
            == 1.0
        )


class TestDistributionSimilarity:
    def test_perfect_for_full_population(self, table2_repo, table2_instance):
        value = distribution_similarity(
            table2_instance, table2_repo.user_ids, top_groups=5
        )
        assert value == pytest.approx(1.0)

    def test_skewed_subset_scores_lower(self, table2_instance):
        full = distribution_similarity(
            table2_instance, ["Alice", "Bob", "Carol", "David", "Eve"]
        )
        skewed = distribution_similarity(table2_instance, ["Bob"])
        assert skewed < full

    def test_bounded(self, table2_instance):
        for subset in (["Alice"], ["Bob", "Carol"], []):
            value = distribution_similarity(table2_instance, subset)
            assert 0.0 <= value <= 1.0


class TestEvaluateIntrinsic:
    def test_report_fields(self, table2_instance):
        report = evaluate_intrinsic(table2_instance, ["Alice", "Eve"], k=5)
        data = report.as_dict()
        assert data["total_score"] == 17.0
        assert set(data) == {
            "total_score",
            "top_k_coverage",
            "intersected_coverage",
            "distribution_similarity",
        }

    def test_monotone_in_subset_growth(self, ta_repository):
        groups = build_simple_groups(
            ta_repository, GroupingConfig(min_support=3)
        )
        instance = build_instance(ta_repository, 8, groups=groups)
        users = ta_repository.user_ids
        small = evaluate_intrinsic(instance, users[:2])
        large = evaluate_intrinsic(instance, users[:20])
        assert large.total_score >= small.total_score
        assert large.top_k_coverage >= small.top_k_coverage
